//! The DASH machine: clusters, directories, interconnect, and the
//! event-driven protocol engine.
//!
//! ## Protocol summary (paper §2)
//!
//! *Read*: local cluster → home. Clean/shared at home: home replies. Dirty:
//! home forwards to the owner, which replies to the requester and sends a
//! sharing writeback to the home.
//!
//! *Write*: local cluster → home. Home sends invalidations to (a superset
//! of) the sharers and an ownership reply carrying the invalidation count;
//! each invalidated cluster acknowledges directly to the requester; the
//! write completes when all acknowledgements are in. Dirty at a third
//! cluster: home forwards; the owner transfers ownership directly.
//!
//! ## Modeling conventions
//!
//! * Directory state is per *cluster*; the home cluster's own copies are
//!   never recorded — they are kept coherent by the home bus snoop during
//!   home processing, exactly as in DASH (this is also why sparse
//!   directories hold no entries for cluster-local data, §4.2).
//! * Message channels between a fixed (src, dst) pair are FIFO (latencies
//!   are deterministic per pair and ties break in scheduling order) and the
//!   mesh latency model satisfies the triangle inequality strictly, so
//!   replies can never be overtaken by later invalidations. To keep that
//!   property across *successively processed* home transactions, every
//!   home emission (reply, forward, invalidation, flush) leaves at the
//!   same `bus_memory` offset from its transaction's processing time.
//! * Conflicting home transactions queue per block instead of NAK/retry
//!   (see `scd-protocol::serializer`).

use std::collections::HashMap;

use scd_core::{DirState, EntryAccess, NodeId, NodeSet};
use scd_mem::{CacheHierarchy, ClusterCaches, HitLevel, LineState};
use scd_noc::{FaultPlan, Network};
use scd_protocol::{
    BarrierManager, BusyReason, EarlyKind, HomeSerializer, LockManager, LockOutcome, Msg,
    MsgArena, MsgKind, MsgRef, Rac, UnlockOutcome,
};
use scd_protocol::rac::{MshrKind, StartOutcome};
use scd_sim::{Cycle, EventQueue, RingLog, SimRng, Stamp};
use scd_stats::{Histogram, MessageClass, Traffic};
use scd_tango::{Op, ThreadProgram};
use scd_trace::{
    AttribClass, AttribParams, Attribution, EventKind, IntervalSnapshot, Json, MetricsRegistry,
    Phase, TraceConfig, TraceEvent, Tracer, TxnTimeline,
};

use crate::config::MachineConfig;
use crate::error::{BlockedProc, ClusterDiag, PostMortem, SimError};
use crate::stats::{FaultCounters, ProtocolCounters, RunStats, StallBreakdown};

pub mod explore;
pub mod shard;

/// Simulator events. The hot variant, `Deliver`, carries an 8-byte
/// [`MsgRef`] into the message arena rather than the ~40-byte [`Msg`]
/// itself, so the event queue's ring buckets shuffle two words per event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    /// Processor fetches and executes its next operation.
    ProcNext(usize),
    /// Processor re-executes its pending operation (e.g. after a merged
    /// transaction completed with insufficient rights).
    ProcRetry(usize),
    /// A protocol message reaches its destination cluster (payload parked
    /// in the machine's [`MsgArena`]).
    Deliver(MsgRef),
    /// The home directory replays one parked request for `block` (requests
    /// that queued behind an in-flight transaction re-occupy the directory
    /// one at a time, `dir_lookup` apart).
    Replay {
        /// The home cluster.
        home: usize,
        /// The block whose queue is draining.
        block: u64,
    },
}

/// The event-log mirror of [`Ev`]: identical variants, but `Deliver`
/// carries the resolved [`Msg`] so post-mortem rendering never chases a
/// handle into an arena slot that was freed (and possibly reused) long
/// after the event was logged.
#[derive(Clone, Copy, Debug)]
enum EvLog {
    /// See [`Ev::ProcNext`].
    ProcNext(usize),
    /// See [`Ev::ProcRetry`].
    ProcRetry(usize),
    /// See [`Ev::Deliver`] — payload resolved at pop time.
    Deliver(Msg),
    /// See [`Ev::Replay`].
    Replay {
        /// The home cluster.
        home: usize,
        /// The block whose queue is draining.
        block: u64,
    },
}

/// Per-cluster lock bookkeeping: which local processor holds the lock,
/// which are queued behind it, and whether the cluster has a request
/// outstanding at the lock's home.
#[derive(Clone, Debug, Default)]
struct ClusterLock {
    holder: Option<usize>,
    waiters: std::collections::VecDeque<usize>,
    requested: bool,
}

/// One processing node.
#[derive(Clone)]
struct ClusterNode {
    caches: ClusterCaches,
    dir: scd_core::DirectoryStore,
    rac: Rac,
    ser: HomeSerializer,
    locks: LockManager,
    barriers: BarrierManager,
    lock_state: HashMap<u32, ClusterLock>,
    barrier_local: HashMap<u32, Vec<usize>>,
    /// In-progress serial invalidation chains (SCI-style mode): remaining
    /// targets, the write requester awaiting the final reply, and the
    /// version the write creates.
    serial_chains: HashMap<u64, (std::collections::VecDeque<usize>, usize, u64)>,
    /// Version oracle: latest version the home has assigned per block.
    cur_version: HashMap<u64, u64>,
    /// Version oracle: version of this cluster's resident copy per block
    /// (meaningful only while a copy is held; refreshed on every fill).
    line_version: HashMap<u64, u64>,
    /// The last ownership-epoch version this cluster *completed* (filled
    /// dirty) per block. A forward stamped with this epoch refers to data
    /// we have (possibly downgraded since); a forward stamped newer refers
    /// to our still-pending grant and must wait for it.
    last_owner_epoch: HashMap<u64, u64>,
    /// Home-side: blocks with an in-flight `FwdWrite`, whose version bump
    /// makes `cur_version` one ahead of the *recorded* owner's epoch.
    pending_write_bump: std::collections::HashSet<u64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProcStatus {
    Running,
    Blocked,
    Done,
}

struct ProcState {
    program: Box<dyn ThreadProgram>,
    pending: Option<Op>,
    status: ProcStatus,
    /// When the current block began, and whether it is a sync stall.
    blocked_since: Cycle,
    blocked_on_sync: bool,
    mem_stall: u64,
    sync_stall: u64,
    finish: Cycle,
}

impl Clone for ProcState {
    /// Clones via [`ThreadProgram::fork`] — the one field a derive cannot
    /// copy. This is what lets a whole [`Machine`] be cloned for
    /// exploration branching.
    fn clone(&self) -> Self {
        ProcState {
            program: self.program.fork(),
            pending: self.pending,
            status: self.status,
            blocked_since: self.blocked_since,
            blocked_on_sync: self.blocked_on_sync,
            mem_stall: self.mem_stall,
            sync_stall: self.sync_stall,
            finish: self.finish,
        }
    }
}

/// Result of the home directory's decision for one request (plain data, so
/// the caller can send messages without fighting the borrow checker).
enum DirAction {
    Stalled { blocker: u64 },
    SelfOwned,
    Forward { owner: usize },
    Supply { nb_evict: Option<usize> },
    Grant { inval_targets: NodeSet },
}

struct ReplacementWork {
    victim_key: u64,
    targets: NodeSet,
    /// The victim entry's recorded dirty owner, if any.
    dirty_owner: Option<usize>,
}

/// One in-flight traced coherence transaction. Keyed by (requester
/// cluster, block), which is unique because the RAC holds one MSHR per
/// cluster/block pair; merged waiters join the existing transaction.
#[derive(Clone)]
struct TxnLive {
    id: u64,
    issue: Cycle,
    write: bool,
    home_lookup: Option<Cycle>,
    fanout: Option<Cycle>,
    retries: u32,
}

/// Home-side view of a live traced transaction, keyed like [`TxnLive`]
/// by (requester cluster, block). The home consults this — never the
/// requester's `txn_live` map, which may live on another shard — when it
/// records `HomeLookup`/`Fanout` phases; the flags make each phase
/// set-once per transaction id.
#[derive(Clone, Copy)]
struct PhaseSlot {
    id: u64,
    issue: Cycle,
    hl_done: bool,
    fo_done: bool,
}

/// Cross-shard telemetry notes exchanged at window barriers. Notes ride
/// the barrier, not the simulated network: they carry trace metadata whose
/// happens-before edges (a home services a request at least one network
/// leg after it was issued; a requester completes at least one leg after
/// the home's phase) guarantee the note is applied before any event that
/// reads it. Within one shard, notes are applied immediately.
#[derive(Clone, Copy, Debug)]
pub(crate) enum TxnNote {
    /// Requester → home: a traced transaction began.
    Begin {
        /// Requester cluster (keys the home's phase slot).
        requester: usize,
        /// The block.
        block: u64,
        /// The transaction id (cluster-encoded, see `trace_txn_begin`).
        id: u64,
        /// The issue cycle.
        issue: Cycle,
    },
    /// Home → requester: a lifecycle phase was recorded at the home.
    Phase {
        /// Requester cluster.
        requester: usize,
        /// The block.
        block: u64,
        /// The transaction id the home recorded the phase under.
        id: u64,
        /// Which phase.
        phase: Phase,
        /// When the home recorded it.
        at: Cycle,
    },
}

/// A delivery bound for a cluster another shard owns: exported at the end
/// of the window and merged into the destination shard's wheel at the
/// barrier, carrying the canonical stamp drawn at the (source-side) send.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Outbound {
    pub(crate) deliver_at: Cycle,
    pub(crate) stamp: Stamp,
    pub(crate) msg: Msg,
}

/// One shard's contribution to one interval boundary `end`: the per-window
/// counter deltas its clusters produced plus its share of the occupancy
/// sample. The coordinator sums pieces across shards into the exact
/// [`IntervalSnapshot`] a solo run would have produced, and the
/// attribution deltas into the streamed `attrib_delta` record.
#[derive(Clone, Debug)]
pub(crate) struct IntervalPiece {
    pub(crate) snap: IntervalSnapshot,
    /// Per-class attribution counter deltas over the window (all zero when
    /// attribution is off).
    pub(crate) attrib_delta: [scd_trace::ClassCounters; AttribClass::ALL.len()],
    /// Per-link flit deltas over the window (empty when attribution is
    /// off).
    pub(crate) link_delta: Vec<((usize, usize), u64)>,
}

/// Counter baselines at the last interval boundary, so each
/// [`IntervalSnapshot`] reports per-window deltas.
#[derive(Clone, Default)]
struct IntervalBase {
    messages: u64,
    retries: u64,
    nacks: u64,
    ops: u64,
}

/// A recorded event waiting for the stream watermark to pass it.
/// Ordered by the canonical `(cycle, cluster, per-cluster seq)` trace
/// order — *reversed*, so [`std::collections::BinaryHeap`] (a max-heap)
/// pops the earliest event first.
struct PendingEvent(TraceEvent);

impl PendingEvent {
    fn key(&self) -> (u64, u32, u64) {
        (self.0.cycle, self.0.cluster, self.0.seq)
    }
}

impl PartialEq for PendingEvent {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for PendingEvent {}
impl PartialOrd for PendingEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key().cmp(&self.key())
    }
}

/// Live-streaming state: the attached sink plus the watermark reorder
/// buffer that reproduces the post-hoc `(cycle, seq)` merge order online.
///
/// Events may be recorded with *future* cycle stamps (never past ones),
/// so an event is only safe to emit once the simulation clock has moved
/// strictly past its cycle — everything still unrecorded will sort after
/// it. The pending heap holds recorded-but-not-yet-safe events.
struct StreamState {
    /// The attached sink (`None` = streaming off; the inert default).
    sink: Option<Box<dyn scd_trace::TraceSink>>,
    /// Pre-computed `sink.is_some()`, checked once per event like
    /// `trace_active`/`fault_active`.
    on: bool,
    /// Recorded events the watermark has not passed yet.
    pending: std::collections::BinaryHeap<PendingEvent>,
    /// Events emitted so far: each emitted line's `seq` is renumbered to
    /// its 1-based position in the canonical emission order, matching what
    /// `Tracer::merged` assigns post-hoc.
    emitted: u64,
    /// Per-class attribution counters at the last emitted delta.
    attrib_base: [scd_trace::ClassCounters; scd_trace::AttribClass::ALL.len()],
    /// Per-link flit counters at the last emitted delta.
    link_base: HashMap<(usize, usize), u64>,
}

impl StreamState {
    fn inert() -> Self {
        StreamState {
            sink: None,
            on: false,
            pending: std::collections::BinaryHeap::new(),
            emitted: 0,
            attrib_base: Default::default(),
            link_base: HashMap::new(),
        }
    }
}

/// Cloning a machine detaches the stream: exploration branches share one
/// history up to the fork, and two writers interleaving into one sink
/// would corrupt both orderings. The clone is inert (like a machine that
/// never attached a sink); re-attach explicitly to stream from it.
impl Clone for StreamState {
    fn clone(&self) -> Self {
        StreamState::inert()
    }
}

/// Directory-observatory occupancy telemetry, only fed when
/// `TraceConfig::patterns` is on (`patterns_active`). Everything here is
/// read-only against the protocol: counters and sampled histograms.
#[derive(Clone, Debug, Default)]
struct Observatory {
    /// Interval boundaries at which the live-entry scan ran.
    samples: u64,
    /// Aggregated sharer-count histogram over live entries at sample
    /// points: `sharers[k]` = entry observations with a k-cluster
    /// superset (index capped at the machine size).
    sharers: Vec<u64>,
    /// Write fan-outs observed (Grant-path invalidation decisions).
    fanout_events: u64,
    /// Fan-outs whose entry representation was still precise.
    fanout_precise: u64,
    /// Fan-outs sent from a broadcast-mode entry.
    fanout_broadcast: u64,
    /// Invalidation targets across all fan-outs.
    fanout_targets: u64,
    /// Targets that actually held the block (superset overshoot is
    /// `targets - present`).
    fanout_present: u64,
    /// Fan-outs from a coarse-vector entry.
    coarse_events: u64,
    /// Region bits set across coarse fan-outs.
    coarse_regions: u64,
    /// Clusters covered by those region bits (targets).
    coarse_covered: u64,
    /// Covered clusters that actually held the block.
    coarse_present: u64,
}

/// Per-cluster snapshot handed to the invariant checker: resident blocks
/// with their highest state, the directory store, and the serializer.
pub(crate) type ClusterView<'a> = (
    std::collections::HashMap<u64, LineState>,
    &'a scd_core::DirectoryStore,
    &'a HomeSerializer,
);

/// A configured DASH machine ready to run a workload.
///
/// `Clone` produces an independent machine mid-run (thread programs are
/// forked at their current position) — the substrate of the model
/// checker's state branching; see [`explore`](crate::machine::explore).
#[derive(Clone)]
pub struct Machine {
    cfg: MachineConfig,
    queue: EventQueue<Ev>,
    /// Slab of in-flight message payloads; `Ev::Deliver` holds handles.
    arena: MsgArena,
    clusters: Vec<ClusterNode>,
    network: Network,
    traffic: Traffic,
    inval_hist: Histogram,
    procs: Vec<ProcState>,
    running: usize,
    finish_time: Cycle,
    shared_reads: u64,
    shared_writes: u64,
    sync_ops: u64,
    counters: ProtocolCounters,
    /// Version oracle: highest version each cluster has observed per block.
    observed: HashMap<(usize, u64), u64>,
    versions_assigned: u64,
    /// Resolved fault plan (inert when `cfg.fault_plan` is `None`).
    fault_plan: FaultPlan,
    /// Pre-computed `fault_plan.is_active()`: an inert plan must cost
    /// nothing and never consume randomness, so every hook gates on this.
    fault_active: bool,
    /// Per-directed-channel fault streams, keyed `(src, dst)` and derived
    /// lazily as a pure function of the master seed. Send-side draws
    /// (reorder/delay/dup) and deliver-side draws (nack injection) use
    /// separate streams so each is consumed in its own channel-local order
    /// — which makes fault placement a function of per-channel traffic
    /// history alone, identical for any shard count.
    fault_send_rng: HashMap<(usize, usize), SimRng>,
    fault_nack_rng: HashMap<(usize, usize), SimRng>,
    faults: FaultCounters,
    /// Latest scheduled request-class delivery per (src, dst), so injected
    /// latency spikes keep each channel FIFO.
    chan_clamp: HashMap<(usize, usize), Cycle>,
    /// Cycle of the last retired operation (forward-progress watchdog).
    last_progress: Cycle,
    /// Recently processed events, kept for failure post-mortems.
    event_log: RingLog<(Cycle, EvLog)>,
    /// Resolved trace configuration (inert when `cfg.trace` is `None`).
    trace_cfg: TraceConfig,
    /// Pre-computed `trace_cfg.is_active()`: like `fault_active`, an inert
    /// trace must cost nothing, so every hook gates on this bool.
    trace_active: bool,
    /// Per-cluster bounded event rings (inert when tracing is off).
    tracer: Tracer,
    /// Phase-latency histograms and interval snapshots (only fed when
    /// `trace_cfg.metrics`).
    metrics: MetricsRegistry,
    /// Pre-computed `trace_cfg.attribution`: gates the byte/flit and
    /// per-link accounting in `send` (inert and free when off).
    attrib_active: bool,
    /// Per-class traffic attribution (only fed when `attrib_active`).
    attrib: Attribution,
    /// Pre-computed `trace_cfg.patterns`: gates `inval` event recording
    /// and the directory-occupancy sampling (inert and free when off).
    patterns_active: bool,
    /// Directory-occupancy telemetry (only fed when `patterns_active`).
    obs: Observatory,
    /// Live traced transactions, keyed by (requester cluster, block).
    /// Requester-side state, touched only while processing events of the
    /// requester's own cluster.
    txn_live: HashMap<(usize, u64), TxnLive>,
    /// Home-side phase slots, keyed by (requester cluster, block) and fed
    /// by `TxnNote::Begin`. Touched only while processing home events.
    txn_phase: HashMap<(usize, u64), PhaseSlot>,
    /// Per-requester-cluster transaction id counters. Ids encode the
    /// cluster in the high bits so each cluster hands them out locally —
    /// no global counter to race on across shards.
    txn_seq: Vec<u64>,
    /// Next interval-snapshot boundary (0 when sampling is off).
    interval_next: Cycle,
    /// Start cycle of the current interval window.
    interval_start: Cycle,
    /// Counter baselines at the last interval boundary.
    interval_base: IntervalBase,
    /// Armed test-only protocol mutation (see [`explore::Mutation`]); used
    /// to validate that the model checker actually catches protocol bugs.
    mutation: Option<explore::Mutation>,
    /// Live telemetry stream (inert until [`Machine::attach_stream`];
    /// detached again by `Clone`).
    stream: StreamState,
    /// First cluster this machine owns. A solo machine owns `[0, clusters)`;
    /// a shard owns a contiguous sub-range and exports everything else.
    shard_base: usize,
    /// Number of clusters this machine owns.
    shard_count: usize,
    /// Pre-computed `shard_count == cfg.clusters`: gates the per-event
    /// watchdog/limit checks and stream pumping that the shard coordinator
    /// takes over in a sharded run.
    solo: bool,
    /// Per-cluster canonical-stamp counters: every scheduled event is
    /// stamped `(cluster, emit_seq[cluster]++)` from the cluster context
    /// that emitted it, making same-cycle delivery order a pure function
    /// of per-cluster local history (identical for any shard count).
    emit_seq: Vec<u64>,
    /// Deliveries bound for clusters other shards own, drained at window
    /// barriers.
    outbox: Vec<Outbound>,
    /// Cross-shard telemetry notes, drained at window barriers.
    note_outbox: Vec<TxnNote>,
    /// End of the current conservative window (exclusive); used to check
    /// the lookahead invariant on exported deliveries. `u64::MAX` in solo
    /// mode.
    window_end: Cycle,
    /// Interval-boundary pieces for the coordinator (non-solo runs only).
    interval_pieces: Vec<IntervalPiece>,
    /// Attribution baselines for piece deltas (non-solo runs only).
    piece_attrib_base: [scd_trace::ClassCounters; AttribClass::ALL.len()],
    piece_link_base: HashMap<(usize, usize), u64>,
}

impl Machine {
    /// Builds a machine and attaches one [`ThreadProgram`] per processor.
    ///
    /// # Panics
    /// If the number of programs does not match `cfg.processors()`.
    pub fn new(cfg: MachineConfig, programs: Vec<Box<dyn ThreadProgram>>) -> Self {
        let clusters = cfg.clusters;
        Self::new_shard(cfg, programs, 0, clusters)
    }

    /// Builds one shard of a machine: it owns clusters
    /// `[shard_base, shard_base + shard_count)` and their processors. The
    /// full-size cluster/processor tables are still allocated (so every
    /// index site works unchanged), but non-owned processors are inert
    /// stubs marked `Done`, `start` seeds only owned processors, and
    /// deliveries addressed to non-owned clusters are exported through the
    /// outbox instead of being scheduled locally. A solo machine is simply
    /// the shard that owns everything.
    pub(crate) fn new_shard(
        cfg: MachineConfig,
        programs: Vec<Box<dyn ThreadProgram>>,
        shard_base: usize,
        shard_count: usize,
    ) -> Self {
        assert_eq!(
            programs.len(),
            cfg.processors(),
            "need one program per processor"
        );
        assert!(
            shard_base + shard_count <= cfg.clusters && shard_count > 0,
            "shard range out of bounds"
        );
        let clusters: Vec<ClusterNode> = (0..cfg.clusters)
            .map(|c| ClusterNode {
                caches: ClusterCaches::new(cfg.procs_per_cluster, || {
                    CacheHierarchy::new(cfg.l1_blocks, cfg.l1_ways, cfg.l2_blocks, cfg.l2_ways)
                }),
                dir: scd_core::DirectoryStore::new(
                    cfg.scheme,
                    cfg.clusters,
                    cfg.organization.clone(),
                    cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                rac: Rac::new(),
                ser: HomeSerializer::new(),
                locks: LockManager::new(cfg.scheme, cfg.clusters),
                barriers: BarrierManager::new(),
                lock_state: HashMap::new(),
                barrier_local: HashMap::new(),
                serial_chains: HashMap::new(),
                cur_version: HashMap::new(),
                line_version: HashMap::new(),
                last_owner_epoch: HashMap::new(),
                pending_write_bump: std::collections::HashSet::new(),
            })
            .collect();
        let mut network = Network::new(cfg.clusters, cfg.latency);
        if let Some(occ) = cfg.link_occupancy {
            network = network.with_contention(occ);
        }
        let owned = shard_base..shard_base + shard_count;
        let procs = programs
            .into_iter()
            .enumerate()
            .map(|(p, program)| {
                let mine = owned.contains(&(p / cfg.procs_per_cluster));
                ProcState {
                    program,
                    pending: None,
                    // Non-owned processors live on another shard; marking
                    // them Done keeps every index site valid while this
                    // shard never runs them.
                    status: if mine {
                        ProcStatus::Running
                    } else {
                        ProcStatus::Done
                    },
                    blocked_since: 0,
                    blocked_on_sync: false,
                    mem_stall: 0,
                    sync_stall: 0,
                    finish: 0,
                }
            })
            .collect::<Vec<_>>();
        let running = shard_count * cfg.procs_per_cluster;
        let fault_plan = cfg.fault_plan.unwrap_or_default();
        let event_log = RingLog::new(cfg.event_log);
        let trace_cfg = cfg.trace.unwrap_or_else(TraceConfig::none);
        let trace_active = trace_cfg.is_active();
        let tracer = if trace_active {
            Tracer::new(cfg.clusters, &trace_cfg)
        } else {
            Tracer::inert()
        };
        if trace_cfg.attribution {
            network.enable_link_counters();
        }
        let mut clusters = clusters;
        if trace_cfg.patterns {
            // Churn tracking rides the patterns flag: the sparse
            // organizations start counting victim re-references from
            // cycle 0 (no-op for complete/overflow backings).
            for c in &mut clusters {
                c.dir.enable_churn_tracking();
            }
        }
        Machine {
            queue: EventQueue::new(),
            arena: MsgArena::new(),
            clusters,
            network,
            traffic: Traffic::new(),
            inval_hist: Histogram::new(),
            procs,
            running,
            finish_time: 0,
            shared_reads: 0,
            shared_writes: 0,
            sync_ops: 0,
            counters: ProtocolCounters::default(),
            observed: HashMap::new(),
            versions_assigned: 0,
            fault_active: fault_plan.is_active(),
            fault_plan,
            fault_send_rng: HashMap::new(),
            fault_nack_rng: HashMap::new(),
            faults: FaultCounters::default(),
            chan_clamp: HashMap::new(),
            last_progress: 0,
            event_log,
            interval_next: trace_cfg.interval,
            interval_start: 0,
            interval_base: IntervalBase::default(),
            attrib_active: trace_cfg.attribution,
            attrib: Attribution::new(AttribParams::with_block_bytes(cfg.block_bytes)),
            patterns_active: trace_cfg.patterns,
            obs: Observatory {
                sharers: vec![0; cfg.clusters + 1],
                ..Observatory::default()
            },
            trace_cfg,
            trace_active,
            tracer,
            metrics: MetricsRegistry::new(),
            txn_live: HashMap::new(),
            txn_phase: HashMap::new(),
            txn_seq: vec![0; cfg.clusters],
            mutation: None,
            stream: StreamState::inert(),
            shard_base,
            shard_count,
            solo: shard_count == cfg.clusters,
            emit_seq: vec![0; cfg.clusters],
            outbox: Vec::new(),
            note_outbox: Vec::new(),
            window_end: Cycle::MAX,
            interval_pieces: Vec::new(),
            piece_attrib_base: Default::default(),
            piece_link_base: HashMap::new(),
            cfg,
        }
    }

    /// Whether this machine owns `cluster` (always true for a solo
    /// machine).
    #[inline]
    fn owns(&self, cluster: usize) -> bool {
        cluster.wrapping_sub(self.shard_base) < self.shard_count
    }

    /// Draws the next canonical stamp from `cluster`'s emission counter.
    /// Every schedule site stamps from the cluster context doing the
    /// emitting, which is always the cluster whose event is currently
    /// being processed — so counters are only ever bumped by the owning
    /// shard, in an order that is pure local history.
    #[inline]
    fn stamp(&mut self, cluster: usize) -> Stamp {
        let k = self.emit_seq[cluster];
        self.emit_seq[cluster] = k + 1;
        Stamp {
            lane: cluster as u32,
            seq: k,
        }
    }

    /// Schedules a local event at `time`, stamped from `cluster`'s context.
    #[inline]
    fn sched(&mut self, cluster: usize, time: Cycle, ev: Ev) {
        let stamp = self.stamp(cluster);
        self.queue.schedule_at_stamped(time, stamp, ev);
    }

    /// Routes one finalized delivery: scheduled locally when this shard
    /// owns the destination, exported through the outbox otherwise. The
    /// stamp is drawn from the *source* cluster either way, so the
    /// destination shard inserts it exactly where a solo run would have.
    fn deliver_or_export(&mut self, deliver_at: Cycle, msg: Msg) {
        let stamp = self.stamp(msg.src);
        if self.owns(msg.dst) {
            let r = self.arena.alloc(msg);
            self.queue.schedule_at_stamped(deliver_at, stamp, Ev::Deliver(r));
        } else {
            // The conservative-window invariant: a cross-shard delivery
            // can never land inside the window that produced it.
            assert!(
                deliver_at >= self.window_end,
                "cross-shard delivery at {deliver_at} inside window ending {}",
                self.window_end
            );
            self.outbox.push(Outbound {
                deliver_at,
                stamp,
                msg,
            });
        }
    }

    /// Merges one delivery exported by another shard into the local wheel.
    pub(crate) fn import_delivery(&mut self, ob: Outbound) {
        debug_assert!(self.owns(ob.msg.dst));
        let r = self.arena.alloc(ob.msg);
        self.queue
            .schedule_at_stamped(ob.deliver_at, ob.stamp, Ev::Deliver(r));
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn cluster_of(&self, p: usize) -> usize {
        p / self.cfg.procs_per_cluster
    }

    fn local_of(&self, p: usize) -> usize {
        p % self.cfg.procs_per_cluster
    }

    fn global_proc(&self, cluster: usize, local: usize) -> usize {
        cluster * self.cfg.procs_per_cluster + local
    }

    /// Directory-store key for `block`: the *home-local* block index.
    ///
    /// Memory is block-interleaved round-robin across clusters, so a home's
    /// blocks are all congruent mod `clusters`; indexing the (sparse)
    /// directory with raw block numbers would alias a home's entire memory
    /// into a single set.
    fn dir_key(&self, block: u64) -> u64 {
        block / self.cfg.clusters as u64
    }

    /// Version oracle: the home hands out a fresh version for a new
    /// ownership epoch of `block`.
    fn bump_version(&mut self, home: usize, block: u64) -> u64 {
        self.versions_assigned += 1;
        let v = self.clusters[home].cur_version.entry(block).or_insert(0);
        *v += 1;
        *v
    }

    /// Version oracle: the version memory would supply for `block`.
    fn memory_version(&self, home: usize, block: u64) -> u64 {
        self.clusters[home]
            .cur_version
            .get(&block)
            .copied()
            .unwrap_or(0)
    }

    /// Version oracle: cluster `cl` installed a copy of `block` at `version`.
    fn set_line_version(&mut self, cl: usize, block: u64, version: u64) {
        self.clusters[cl].line_version.insert(block, version);
    }

    /// Version oracle: cluster `cl` observed `block` (a read or write hit /
    /// completion). Panics if the observation runs backwards — i.e. the
    /// cluster sees data older than it has already seen, the signature of a
    /// stale copy surviving an invalidation it should not have.
    fn observe(&mut self, cl: usize, block: u64) {
        if !self.cfg.track_versions {
            return;
        }
        let v = self.clusters[cl]
            .line_version
            .get(&block)
            .copied()
            .unwrap_or(0);
        let last = self.observed.entry((cl, block)).or_insert(0);
        assert!(
            v >= *last,
            "version oracle: cluster {cl} observed block {block} at version {v}              after already seeing version {last}"
        );
        *last = v;
    }

    /// Sends `msg`, accounting traffic and network latency. Intra-cluster
    /// deliveries are free and uncounted (they ride the cluster bus), and
    /// are also exempt from fault injection.
    fn send(&mut self, ready_at: Cycle, msg: Msg) {
        let lat = self.network.send(ready_at, msg.src, msg.dst);
        if msg.src != msg.dst {
            self.traffic.record(msg.kind.class());
            if self.attrib_active {
                // Read-only accounting: classifies the label under the
                // byte/flit wire model and charges the flits to every
                // link of the route. Never touches latency or ordering.
                let hops = self.network.hops(msg.src, msg.dst);
                let flits = self.attrib.record(msg.kind.label(), hops as u32);
                self.network.note_link_traffic(msg.src, msg.dst, flits);
            }
            if self.trace_active && self.tracer.messages_enabled() {
                self.tracer.record(
                    msg.src,
                    ready_at,
                    EventKind::MsgSend {
                        src: msg.src as u32,
                        dst: msg.dst as u32,
                        msg: msg.kind.label(),
                        class: msg.kind.class().label(),
                        block: msg.kind.block(),
                        hops: self.network.hops(msg.src, msg.dst) as u32,
                    },
                );
            }
            if self.fault_active {
                return self.faulty_schedule(ready_at + lat, msg);
            }
        }
        self.deliver_or_export(ready_at + lat, msg);
    }

    /// The per-channel fault stream for `(src, dst)`: a pure function of
    /// the master seed and the channel, so any shard (or a solo run)
    /// derives the identical stream. `side` separates send-side draws from
    /// deliver-side (nack) draws.
    fn channel_rng(seed: u64, src: usize, dst: usize, side: u64) -> SimRng {
        let mut x = seed ^ 0xFA17_5EED_0000_0000;
        for v in [src as u64, dst as u64, side] {
            x = (x ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 29;
        }
        SimRng::new(x)
    }

    fn send_rng(&mut self, src: usize, dst: usize) -> &mut SimRng {
        let seed = self.cfg.seed;
        self.fault_send_rng
            .entry((src, dst))
            .or_insert_with(|| Self::channel_rng(seed, src, dst, 1))
    }

    fn nack_rng(&mut self, src: usize, dst: usize) -> &mut SimRng {
        let seed = self.cfg.seed;
        self.fault_nack_rng
            .entry((src, dst))
            .or_insert_with(|| Self::channel_rng(seed, src, dst, 2))
    }

    /// Applies the fault plan to one inter-cluster delivery: latency spikes
    /// and out-of-order jitter move the delivery time, duplication
    /// schedules the message twice. Which kinds each mode may touch is
    /// dictated by the protocol's ordering assumptions (DESIGN.md, failure
    /// model): replies, invalidations and acknowledgements are never
    /// perturbed — delaying one past a newer ownership epoch would corrupt
    /// state the protocol has no recovery path for, whereas requests are
    /// absorbed by the home's serializer, SelfOwned handling, and NAKs.
    fn faulty_schedule(&mut self, nominal: Cycle, msg: Msg) {
        let plan = self.fault_plan;
        let request_class = msg.kind.class() == MessageClass::Request;
        let coherence_req =
            matches!(msg.kind, MsgKind::ReadReq { .. } | MsgKind::WriteReq { .. });
        let mut deliver_at = nominal;
        let mut clamp_exempt = false;
        if coherence_req
            && plan.reorder_window > 0
            && plan.reorder_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.reorder_prob)
        {
            // Jitter *outside* the channel clamp: the request may land
            // behind traffic sent after it, or — when a spike holds the
            // clamp high — ahead of traffic sent before it, such as its own
            // cluster's writeback.
            deliver_at += self
                .send_rng(msg.src, msg.dst)
                .range(1, plan.reorder_window + 1);
            self.faults.reorders += 1;
            clamp_exempt = true;
        } else if request_class
            && plan.delay_cycles > 0
            && plan.delay_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.delay_prob)
        {
            deliver_at += self
                .send_rng(msg.src, msg.dst)
                .range(1, plan.delay_cycles + 1);
            self.faults.delay_spikes += 1;
        }
        if request_class && !clamp_exempt {
            // A spiked request must not be overtaken by later traffic on
            // its own (FIFO) channel.
            let clamp = self.chan_clamp.entry((msg.src, msg.dst)).or_insert(0);
            deliver_at = deliver_at.max(*clamp);
            *clamp = deliver_at;
        }
        let dup_gap = if matches!(msg.kind, MsgKind::ReadReq { .. })
            && plan.dup_prob > 0.0
            && self.send_rng(msg.src, msg.dst).chance(plan.dup_prob)
        {
            // At-least-once delivery, reads only: re-servicing a read is
            // idempotent (sharer registration is superset-safe and the
            // stray reply is dropped at the RAC), while re-servicing a
            // write would record a second ownership grant. The duplicate
            // gets its own arena slot: each handle is taken exactly once.
            let hi = self.cfg.timing.bus_memory.max(1) + 1;
            let gap = self.send_rng(msg.src, msg.dst).range(1, hi);
            self.faults.duplicates += 1;
            Some(gap)
        } else {
            None
        };
        self.deliver_or_export(deliver_at, msg);
        if let Some(gap) = dup_gap {
            self.deliver_or_export(deliver_at + gap, msg);
        }
    }

    fn unblock(&mut self, at: Cycle, p: usize) {
        let st = &mut self.procs[p];
        if st.status == ProcStatus::Blocked {
            let stalled = at.saturating_sub(st.blocked_since);
            if st.blocked_on_sync {
                st.sync_stall += stalled;
            } else {
                st.mem_stall += stalled;
            }
        }
        st.status = ProcStatus::Running;
    }

    fn resume(&mut self, at: Cycle, p: usize) {
        self.unblock(at, p);
        let cl = self.cluster_of(p);
        self.sched(cl, at, Ev::ProcNext(p));
    }

    fn retry(&mut self, at: Cycle, p: usize) {
        self.unblock(at, p);
        let cl = self.cluster_of(p);
        self.sched(cl, at, Ev::ProcRetry(p));
    }

    fn block(&mut self, at: Cycle, p: usize, on_sync: bool) {
        let st = &mut self.procs[p];
        st.status = ProcStatus::Blocked;
        st.blocked_since = at;
        st.blocked_on_sync = on_sync;
    }

    // ------------------------------------------------------------------
    // Telemetry (scd-trace)
    //
    // Every hook gates on `trace_active` and only *reads* machine state:
    // tracing must never touch the event queue, any RNG stream, or any
    // timing decision, so a traced run retires the identical schedule (the
    // bit-identity contract, tested in tests/telemetry.rs).
    // ------------------------------------------------------------------

    /// A new coherence transaction issued its first request.
    fn trace_txn_begin(&mut self, t: Cycle, cl: usize, block: u64, write: bool) {
        if !self.trace_active || self.txn_live.contains_key(&(cl, block)) {
            return;
        }
        // Transaction ids are minted per requester cluster (cluster in the
        // high bits, a cluster-local sequence below) so a sharded run and
        // the serial engine assign the same id to the same transaction — a
        // single global counter would encode the interleaving of unrelated
        // clusters into every exported trace.
        self.txn_seq[cl] += 1;
        let id = ((cl as u64) << 40) | self.txn_seq[cl];
        self.txn_live.insert(
            (cl, block),
            TxnLive {
                id,
                issue: t,
                write,
                home_lookup: None,
                fanout: None,
                retries: 0,
            },
        );
        self.tracer
            .record(cl, t, EventKind::TxnBegin { txn: id, block, write });
        self.route_note(TxnNote::Begin {
            requester: cl,
            block,
            id,
            issue: t,
        });
    }

    /// The home directory first serviced the transaction (set-once:
    /// queued replays and re-entrant processing don't re-record).
    ///
    /// Phase attribution is *home-side* state ([`PhaseSlot`], fed by
    /// [`TxnNote::Begin`]): the home must decide whether a delivery belongs
    /// to the live transaction without reading the requester's `txn_live`
    /// table, which under sharding may live on another worker. The
    /// recorded timestamp travels back to the requester as a
    /// [`TxnNote::Phase`] for the end-of-transaction timeline.
    fn trace_txn_phase(
        &mut self,
        t: Cycle,
        home: usize,
        requester: usize,
        block: u64,
        phase: Phase,
    ) {
        if !self.trace_active {
            return;
        }
        let Some(slot) = self.txn_phase.get_mut(&(requester, block)) else {
            return;
        };
        // A delivery timestamped before the live transaction began is
        // predecessor traffic (a fault-duplicated or delayed request from
        // an earlier, completed transaction on the same (requester, block)
        // — observable because begins are stamped a cache-lookup ahead of
        // the pop that created them). It must not be attributed here, or
        // the exported lifecycle runs backwards.
        if t < slot.issue {
            return;
        }
        let done = match phase {
            Phase::HomeLookup => &mut slot.hl_done,
            Phase::Fanout => &mut slot.fo_done,
            _ => return,
        };
        if *done {
            return;
        }
        *done = true;
        let id = slot.id;
        self.tracer
            .record(home, t, EventKind::TxnPhase { txn: id, block, phase });
        self.route_note(TxnNote::Phase {
            requester,
            block,
            id,
            phase,
            at: t,
        });
    }

    /// Applies a telemetry note locally when its target cluster lives on
    /// this shard, otherwise queues it for the coordinator to ferry across
    /// the next window barrier. In a solo machine every note applies
    /// immediately, reproducing the old direct-update behavior exactly.
    fn route_note(&mut self, note: TxnNote) {
        let target = match &note {
            TxnNote::Begin { block, .. } => (*block as usize) % self.cfg.clusters,
            TxnNote::Phase { requester, .. } => *requester,
        };
        if self.owns(target) {
            self.apply_note(note);
        } else {
            self.note_outbox.push(note);
        }
    }

    /// Applies one telemetry note to this machine's tables. Called
    /// directly by [`Machine::route_note`] for local targets and by the
    /// shard coordinator when ferrying notes across a window barrier.
    pub(crate) fn apply_note(&mut self, note: TxnNote) {
        match note {
            TxnNote::Begin {
                requester,
                block,
                id,
                issue,
            } => {
                self.txn_phase.insert(
                    (requester, block),
                    PhaseSlot {
                        id,
                        issue,
                        hl_done: false,
                        fo_done: false,
                    },
                );
            }
            TxnNote::Phase {
                requester,
                block,
                id,
                phase,
                at,
            } => {
                let Some(live) = self.txn_live.get_mut(&(requester, block)) else {
                    return;
                };
                if live.id != id {
                    return; // note for an already-completed predecessor
                }
                let slot = match phase {
                    Phase::HomeLookup => &mut live.home_lookup,
                    Phase::Fanout => &mut live.fanout,
                    _ => return,
                };
                if slot.is_none() {
                    *slot = Some(at);
                }
            }
        }
    }

    /// The requester received a NACK for its outstanding transaction.
    fn trace_nack(&mut self, t: Cycle, cl: usize, block: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.get(&(cl, block)) else {
            return;
        };
        if t < live.issue {
            return; // stale NACK for a predecessor transaction
        }
        let txn = live.id;
        self.tracer.record(cl, t, EventKind::Nack { txn, block });
    }

    /// The requester reissued a NACKed request after backing off.
    fn trace_retry(&mut self, t: Cycle, cl: usize, block: u64, attempt: u32, backoff: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.get_mut(&(cl, block)) else {
            return;
        };
        if t < live.issue {
            return; // stale retry echo for a predecessor transaction
        }
        live.retries = attempt;
        let txn = live.id;
        self.tracer.record(
            cl,
            t,
            EventKind::Retry {
                txn,
                block,
                attempt,
                backoff,
            },
        );
    }

    /// Directory-side invalidation event. Gated on the `patterns` flag —
    /// not `trace_active` — so traces recorded without patterns stay
    /// byte-identical to pre-observatory runs.
    fn trace_inval(&mut self, t: Cycle, home: usize, block: u64, targets: u32, cause: &'static str) {
        if !self.patterns_active {
            return;
        }
        self.tracer.record(
            home,
            t,
            EventKind::Inval {
                block,
                targets,
                cause,
            },
        );
    }

    /// The transaction completed at its requester: close it out and feed
    /// the phase-latency histograms.
    fn trace_txn_end(&mut self, t: Cycle, cl: usize, block: u64) {
        if !self.trace_active {
            return;
        }
        let Some(live) = self.txn_live.remove(&(cl, block)) else {
            return;
        };
        let latency = t.saturating_sub(live.issue);
        self.tracer.record(
            cl,
            t,
            EventKind::TxnEnd {
                txn: live.id,
                block,
                latency,
                retries: live.retries,
            },
        );
        if self.trace_cfg.metrics {
            self.metrics.record_txn(&TxnTimeline {
                issue: live.issue,
                home_lookup: live.home_lookup,
                fanout: live.fanout,
                end: t,
                write: live.write,
                retries: live.retries,
            });
        }
    }

    /// Advances interval sampling across every boundary up to `t`.
    fn trace_intervals(&mut self, t: Cycle) {
        while t >= self.interval_next {
            let net = self.network.stats().messages;
            let ops = self.shared_reads + self.shared_writes + self.sync_ops;
            let occupancy: u64 = self
                .clusters
                .iter()
                .map(|c| c.rac.outstanding() as u64)
                .sum();
            let snap = IntervalSnapshot {
                start: self.interval_start,
                end: self.interval_next,
                messages: net - self.interval_base.messages,
                retries: self.faults.retries - self.interval_base.retries,
                nacks: self.faults.nacks - self.interval_base.nacks,
                occupancy,
                ops_retired: ops - self.interval_base.ops,
            };
            if self.solo {
                self.metrics.push_interval(snap);
                if self.stream.on {
                    self.stream_interval(&snap);
                }
                if self.patterns_active {
                    self.sample_patterns(snap.start, snap.end);
                }
            } else {
                // A shard only sees its own slice of the machine: park the
                // window's deltas as a piece and let the coordinator sum
                // pieces across shards into the exact serial record.
                self.push_interval_piece(snap);
            }
            self.interval_base = IntervalBase {
                messages: net,
                retries: self.faults.retries,
                nacks: self.faults.nacks,
                ops,
            };
            self.interval_start = self.interval_next;
            self.interval_next += self.trace_cfg.interval;
        }
    }

    /// Captures this shard's contribution to one closed interval window.
    /// Occupancy and message/op deltas come out exact because each
    /// cluster (and each message's source accounting) belongs to exactly
    /// one shard; the coordinator sums pieces per boundary.
    fn push_interval_piece(&mut self, snap: IntervalSnapshot) {
        let mut attrib_delta =
            [scd_trace::ClassCounters::default(); AttribClass::ALL.len()];
        let mut link_delta = Vec::new();
        if self.attrib_active {
            let cur = self.attrib.counters();
            for (d, (c, b)) in attrib_delta
                .iter_mut()
                .zip(cur.iter().zip(self.piece_attrib_base.iter()))
            {
                *d = c.minus(*b);
            }
            self.piece_attrib_base = cur;
            let base = &mut self.piece_link_base;
            link_delta = self
                .network
                .link_traffic()
                .into_iter()
                .filter_map(|((src, dst), c)| {
                    let prev = base.insert((src, dst), c.flits).unwrap_or(0);
                    let d = c.flits.saturating_sub(prev);
                    (d > 0).then_some(((src, dst), d))
                })
                .collect();
        }
        self.interval_pieces.push(IntervalPiece {
            snap,
            attrib_delta,
            link_delta,
        });
    }

    /// Forces every interval boundary at or below `h` to close even when
    /// no local event lands past it: an idle shard still owes the
    /// coordinator a (zero-delta) piece for each window the fleet
    /// finished. Safe because any boundary `b <= h` with no local events
    /// in `[b, h)` closes with exactly the deltas it would have closed
    /// with lazily.
    pub(crate) fn force_intervals_to(&mut self, h: Cycle) {
        if self.trace_active && self.trace_cfg.interval > 0 {
            self.trace_intervals(h);
        }
    }

    /// Scans every home's live directory entries at an interval boundary
    /// and folds the sharer-count distribution into the observatory;
    /// when a stream is attached, also emits the window's `patterns`
    /// record. O(live entries) per boundary, gated on `patterns_active`.
    fn sample_patterns(&mut self, start: Cycle, end: Cycle) {
        let cap = self.cfg.clusters;
        let mut win = vec![0u64; cap + 1];
        let mut live = 0u64;
        for c in &self.clusters {
            c.dir.for_each_live(|_, e| {
                win[e.sharer_superset().len().min(cap)] += 1;
                live += 1;
            });
        }
        self.obs.samples += 1;
        for (a, b) in self.obs.sharers.iter_mut().zip(&win) {
            *a += b;
        }
        if let Some(sink) = self.stream.sink.as_mut() {
            sink.emit(&scd_trace::patterns_record(start, end, live, &win).to_string());
            sink.flush();
        }
    }

    // ------------------------------------------------------------------
    // Live streaming (scd-trace sinks)
    //
    // Same contract as the other telemetry hooks — read-only against the
    // simulation: the stream pump never touches the event queue, any RNG
    // stream, or any timing decision, and a machine with no sink attached
    // costs one pre-computed branch per event. Ordering: events are
    // emitted in the exact post-hoc `(cycle, seq)` merge order. An event
    // may be recorded with a *future* cycle stamp but never a past one,
    // so once the simulation clock strictly passes a pending event's
    // cycle, nothing that sorts before it can still arrive — the pending
    // heap holds events until that watermark clears them.
    // ------------------------------------------------------------------

    /// Attaches `sink` and starts streaming: an optional `run_meta`
    /// record first, then trace events, interval windows, and
    /// attribution deltas as the run produces them, closed by a
    /// `run_end` record when the run finalizes (success or failure) or
    /// [`Machine::stream_close`] is called.
    ///
    /// Trace events only flow when the machine was built with
    /// `TraceConfig::ring_capacity > 0`; interval and attribution
    /// records follow their own `TraceConfig` switches. Cloning the
    /// machine detaches the stream on the clone (see [`StreamState`]).
    pub fn attach_stream(&mut self, mut sink: Box<dyn scd_trace::TraceSink>, run: Option<Json>) {
        if let Some(run) = run {
            sink.emit(&scd_trace::run_meta_record(&run).to_string());
            sink.flush();
        }
        self.tracer.set_mirror(true);
        self.stream.attrib_base = self.attrib.counters();
        self.stream.link_base = self
            .network
            .link_traffic()
            .into_iter()
            .map(|((src, dst), c)| ((src, dst), c.flits))
            .collect();
        self.stream.pending.clear();
        self.stream.sink = Some(sink);
        self.stream.on = true;
    }

    /// Whether a sink is currently attached.
    pub fn stream_active(&self) -> bool {
        self.stream.on
    }

    /// Moves freshly recorded events from the tracer's mirror into the
    /// pending heap.
    fn stream_drain(&mut self) {
        for ev in self.tracer.take_mirror() {
            self.stream.pending.push(PendingEvent(ev));
        }
    }

    /// Emits every pending event with `cycle < watermark`, in
    /// `(cycle, seq)` order.
    fn stream_flush_below(&mut self, watermark: Cycle) {
        let stream = &mut self.stream;
        let Some(sink) = stream.sink.as_mut() else {
            return;
        };
        while let Some(top) = stream.pending.peek() {
            if top.0.cycle >= watermark {
                break;
            }
            let mut ev = stream.pending.pop().expect("peeked above").0;
            // Recorded seqs are per-cluster lane counters; the emitted
            // stream renumbers them into the global `(cycle, cluster,
            // lane-seq)` merge rank, the same numbering the post-hoc
            // `Tracer::merged` view assigns.
            stream.emitted += 1;
            ev.seq = stream.emitted;
            sink.emit(&ev.to_json().to_string());
        }
    }

    /// Emits one closed interval window: every event belonging to the
    /// window first, then the `interval` record, then (when attribution
    /// is on) the window's per-class and per-link traffic delta.
    fn stream_interval(&mut self, snap: &IntervalSnapshot) {
        self.stream_flush_below(snap.end);
        let mut records = vec![scd_trace::interval_record(snap).to_string()];
        if self.attrib_active {
            let cur = self.attrib.counters();
            let classes: Vec<(&'static str, Json)> = AttribClass::ALL
                .iter()
                .enumerate()
                .map(|(i, c)| (c.label(), cur[i].minus(self.stream.attrib_base[i]).to_json()))
                .collect();
            self.stream.attrib_base = cur;
            // Per-link flit deltas: the window's busiest movers, capped
            // and endpoint-sorted so the record is deterministic.
            const TOP_LINKS: usize = 32;
            let link_base = &mut self.stream.link_base;
            let mut deltas: Vec<(usize, usize, u64)> = self
                .network
                .link_traffic()
                .into_iter()
                .filter_map(|((src, dst), c)| {
                    let base = link_base.insert((src, dst), c.flits).unwrap_or(0);
                    let d = c.flits.saturating_sub(base);
                    (d > 0).then_some((src, dst, d))
                })
                .collect();
            deltas.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
            deltas.truncate(TOP_LINKS);
            deltas.sort_by_key(|&(src, dst, _)| (src, dst));
            records.push(
                scd_trace::attrib_delta_record(snap.start, snap.end, &classes, &deltas)
                    .to_string(),
            );
        }
        if let Some(sink) = self.stream.sink.as_mut() {
            for r in &records {
                sink.emit(r);
            }
            // Boundary flush so a live consumer tailing a file sink sees
            // whole windows, not BufWriter-sized chunks.
            sink.flush();
        }
    }

    /// Flushes everything still pending, emits the closing `run_end`
    /// record (final cycle, recorded/evicted counters), and detaches the
    /// sink. Idempotent; runs automatically when the run finalizes —
    /// call it directly only to stop streaming early or after an
    /// aborted run.
    pub fn stream_close(&mut self) {
        if !self.stream.on {
            return;
        }
        self.stream_drain();
        self.stream_flush_below(Cycle::MAX);
        let (recorded, dropped) = self.trace_counts();
        let cycles = if self.finish_time > 0 {
            self.finish_time
        } else {
            self.queue.now()
        };
        if let Some(mut sink) = self.stream.sink.take() {
            sink.emit(&scd_trace::run_end_record(cycles, recorded, dropped).to_string());
            sink.flush();
        }
        self.stream.on = false;
        self.tracer.set_mirror(false);
    }

    /// All retained trace events, merged into one cycle-ordered history.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.merged()
    }

    /// The last `k` retained trace events of one cluster, oldest first.
    pub fn trace_tail(&self, cluster: usize, k: usize) -> Vec<TraceEvent> {
        self.tracer.tail(cluster, k)
    }

    /// Events recorded / evicted-from-ring counts for the run so far.
    pub fn trace_counts(&self) -> (u64, u64) {
        (self.tracer.recorded(), self.tracer.dropped())
    }

    /// The `trace` section of the `scd-run-stats/v1` document: events
    /// recorded vs evicted from the rings, so truncated history is never
    /// silent. None when tracing is off. Lives outside [`RunStats`] so
    /// the `stats` section stays bit-identical across trace
    /// configurations.
    pub fn trace_json(&self) -> Option<Json> {
        self.trace_active.then(|| {
            let (recorded, dropped) = self.trace_counts();
            Json::obj()
                .with("recorded", Json::U64(recorded))
                .with("dropped_events", Json::U64(dropped))
        })
    }

    /// The `occupancy` section of the `scd-patterns/v1` document:
    /// sampled sharer-count distribution over live directory entries,
    /// write fan-out precision/waste (plus coarse-vector region-bit
    /// utilization when the scheme is `Dir_i CV_r`), and sparse
    /// replacement churn. None unless `TraceConfig::patterns` was on.
    pub fn occupancy_json(&self) -> Option<Json> {
        if !self.patterns_active {
            return None;
        }
        let o = &self.obs;
        let mut churn_total = scd_core::ChurnStats::default();
        let mut churn_on = false;
        for c in &self.clusters {
            if let Some(s) = c.dir.churn_stats() {
                churn_total.merge(&s);
                churn_on = true;
            }
        }
        let mut j = Json::obj()
            .with("samples", Json::U64(o.samples))
            .with(
                "sharers",
                Json::Arr(o.sharers.iter().map(|&c| Json::U64(c)).collect()),
            )
            .with(
                "fanout",
                Json::obj()
                    .with("events", Json::U64(o.fanout_events))
                    .with("precise", Json::U64(o.fanout_precise))
                    .with("broadcast", Json::U64(o.fanout_broadcast))
                    .with("targets", Json::U64(o.fanout_targets))
                    .with("present", Json::U64(o.fanout_present)),
            );
        j.set(
            "coarse",
            if o.coarse_events > 0 {
                Json::obj()
                    .with("events", Json::U64(o.coarse_events))
                    .with("regions_set", Json::U64(o.coarse_regions))
                    .with("covered", Json::U64(o.coarse_covered))
                    .with("present", Json::U64(o.coarse_present))
            } else {
                Json::Null
            },
        );
        j.set(
            "churn",
            if churn_on {
                Json::obj()
                    .with("replacements", Json::U64(churn_total.replacements))
                    .with("rerefs", Json::U64(churn_total.rerefs))
                    .with(
                        "reref_distance",
                        Json::Arr(
                            churn_total
                                .reref_distance
                                .iter()
                                .map(|&c| Json::U64(c))
                                .collect(),
                        ),
                    )
            } else {
                Json::Null
            },
        );
        Some(j)
    }

    /// The metrics registry (empty unless `TraceConfig::metrics` was on).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The traffic attribution (None unless `TraceConfig::attribution`
    /// was on).
    pub fn attribution(&self) -> Option<&Attribution> {
        self.attrib_active.then_some(&self.attrib)
    }

    /// The full `scd-attrib/v1` document section: per-class byte/flit
    /// counters plus the machine-side gauges only this side can see —
    /// the busiest links with their channel occupancy, and (for sparse
    /// organizations) directory set pressure. None when attribution is
    /// off. `elapsed` is the cycle horizon occupancies are normalized
    /// over (pass the run's final cycle).
    pub fn attribution_json(&self, elapsed: Cycle) -> Option<Json> {
        if !self.attrib_active {
            return None;
        }
        let mut j = self.attrib.to_json();
        let horizon = elapsed.max(1) as f64;
        const TOP_LINKS: usize = 16;
        let all = self.network.link_traffic();
        let links: Vec<Json> = all
            .iter()
            .take(TOP_LINKS)
            .map(|((from, to), c)| {
                Json::obj()
                    .with("from", Json::U64(*from as u64))
                    .with("to", Json::U64(*to as u64))
                    .with("messages", Json::U64(c.messages))
                    .with("flits", Json::U64(c.flits))
                    // Fraction of the horizon the channel was moving
                    // flits (one flit-time per flit).
                    .with("occupancy", Json::F64(c.flits as f64 / horizon))
            })
            .collect();
        j.set(
            "links",
            Json::obj()
                .with("tracked", Json::U64(all.len() as u64))
                .with("busiest", Json::Arr(links)),
        );
        // Sparse-directory set pressure: occupancy + replacement rate.
        let mut live = 0usize;
        let mut sparse_sum: Option<scd_core::SparseStats> = None;
        for c in &self.clusters {
            live += c.dir.live_entries();
            if let Some(s) = c.dir.sparse_stats() {
                let sum = sparse_sum.get_or_insert_with(Default::default);
                sum.hits += s.hits;
                sum.misses += s.misses;
                sum.fills += s.fills;
                sum.replacements += s.replacements;
            }
        }
        if let Some(s) = sparse_sum {
            let capacity = match &self.cfg.organization {
                scd_core::Organization::Sparse { entries, .. } => {
                    *entries * self.cfg.clusters
                }
                _ => 0,
            };
            let mut sp = Json::obj()
                .with("capacity", Json::U64(capacity as u64))
                .with("live", Json::U64(live as u64));
            if capacity > 0 {
                sp.set(
                    "occupancy",
                    Json::F64(live as f64 / capacity as f64),
                );
            }
            sp.set("replacements", Json::U64(s.replacements));
            sp.set(
                "replacements_per_kcycle",
                Json::F64(s.replacements as f64 * 1000.0 / horizon),
            );
            j.set("sparse", sp);
        }
        Some(j)
    }

    /// Runs the workload to completion and returns the collected metrics.
    ///
    /// # Panics
    /// On any [`SimError`] — deadlock, `max_cycles` exceeded, an invariant
    /// violation, or the livelock watchdog — with the formatted post-mortem
    /// as the panic message. Use [`Machine::try_run`] to handle failures
    /// gracefully instead.
    pub fn run(&mut self) -> RunStats {
        match self.try_run() {
            Ok(stats) => stats,
            Err(e) => {
                // The panic payload carries the full post-mortem rendering
                // (blocked processors, cluster state, event log, trace
                // tails), so even harnesses that only capture the panic
                // message get the causal history, not a bare headline.
                panic!("simulation failed ({})\n{e}", e.kind());
            }
        }
    }

    /// Runs the workload to completion, returning a structured
    /// [`SimError`] — carrying a [`PostMortem`] of the stuck machine —
    /// instead of panicking when the run cannot complete.
    pub fn try_run(&mut self) -> Result<RunStats, SimError> {
        self.start();
        while let Some((t, ev)) = self.queue.pop() {
            if let Err(e) = self.process_event(t, ev) {
                // Push what the stream already holds before surfacing
                // the failure: a live consumer should see the history up
                // to the death, closed by an honest run_end.
                self.stream_close();
                return Err(e);
            }
        }
        self.finalize()
    }

    /// Processes every pending event strictly below `horizon` — one
    /// conservative window of a sharded run. Returns the time of the last
    /// event processed, if any. Anything popped inside the window can only
    /// schedule locally (at or after the pop time) or export through the
    /// outbox (`deliver_or_export` asserts exports never fall before
    /// `horizon`). After the pops, any interval boundary at or below
    /// `horizon` that no local event crossed is force-closed: its window
    /// content is final because every local event below `horizon` has been
    /// processed and none of them reached the boundary.
    fn run_window(&mut self, horizon: Cycle) -> Result<Option<Cycle>, SimError> {
        self.window_end = horizon;
        let mut last = None;
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked a pending event");
            self.process_event(t, ev)?;
            last = Some(t);
        }
        self.force_intervals_to(horizon);
        Ok(last)
    }

    /// Seeds the event queue with every processor's first fetch. Separated
    /// from [`Machine::try_run`] so the exploration API can drive the same
    /// machine one chosen event at a time.
    fn start(&mut self) {
        for p in 0..self.procs.len() {
            let cl = self.cluster_of(p);
            if !self.owns(cl) {
                continue; // another shard seeds this processor
            }
            self.sched(cl, 0, Ev::ProcNext(p));
        }
    }

    /// Processes one popped event: runaway/watchdog guards, event-log
    /// recording, and dispatch to the processor/protocol handlers. This is
    /// the entire body of the run loop; [`Machine::try_run`] and the
    /// exploration stepper share it so a checked interleaving exercises
    /// exactly the code a production run does.
    fn process_event(&mut self, t: Cycle, ev: Ev) -> Result<(), SimError> {
        {
            if self.cfg.max_cycles > 0 && t > self.cfg.max_cycles {
                let detail = format!(
                    "exceeded max_cycles={} ({} procs still running)",
                    self.cfg.max_cycles, self.running
                );
                return Err(SimError::MaxCycles(self.post_mortem(t, detail)));
            }
            // The livelock watchdog compares against *global* progress, so
            // under sharding it moves to the coordinator's barrier (a shard
            // legitimately idles while a remote transaction it depends on
            // makes progress on another worker).
            if self.solo
                && self.cfg.watchdog_cycles > 0
                && self.running > 0
                && t.saturating_sub(self.last_progress) > self.cfg.watchdog_cycles
            {
                let detail = format!(
                    "no operation retired since cycle {} (watchdog window {})",
                    self.last_progress, self.cfg.watchdog_cycles
                );
                return Err(SimError::LivelockWatchdog(self.post_mortem(t, detail)));
            }
            if self.stream.on {
                // Pull freshly recorded events into the pending heap
                // *before* interval processing, so a closing window can
                // flush its own events ahead of its record.
                self.stream_drain();
            }
            if self.trace_active && self.trace_cfg.interval > 0 {
                self.trace_intervals(t);
            }
            if self.stream.on {
                self.stream_flush_below(t);
            }
            // Resolve the hot handle into its payload *before* logging, so
            // the post-mortem ring holds the message itself, not a handle
            // into a slot that the arena's free list will recycle.
            let ev = match ev {
                Ev::ProcNext(p) => EvLog::ProcNext(p),
                Ev::ProcRetry(p) => EvLog::ProcRetry(p),
                Ev::Replay { home, block } => EvLog::Replay { home, block },
                Ev::Deliver(r) => match self.arena.take(r) {
                    Some(msg) => EvLog::Deliver(msg),
                    None => {
                        // Every alloc is taken exactly once (duplicated
                        // deliveries get their own slot), so a stale handle
                        // here means the arena bookkeeping is broken.
                        let detail = format!(
                            "delivery of stale message handle (slot {}, generation {})",
                            r.index(),
                            r.generation()
                        );
                        return Err(SimError::InvariantViolation(
                            self.post_mortem(t, detail),
                        ));
                    }
                },
            };
            self.event_log.push((t, ev));
            match ev {
                EvLog::ProcNext(p) => {
                    if self.procs[p].status == ProcStatus::Done {
                        return Ok(());
                    }
                    // Fetching the next operation means the previous one
                    // retired: forward progress for the watchdog.
                    self.last_progress = t;
                    let op = self.procs[p].program.next_op();
                    self.procs[p].pending = Some(op);
                    match op {
                        Op::Read(_) => self.shared_reads += 1,
                        Op::Write(_) => self.shared_writes += 1,
                        Op::Lock(_) | Op::Unlock(_) | Op::Barrier(_) => self.sync_ops += 1,
                        _ => {}
                    }
                    self.execute(t, p, op);
                }
                EvLog::ProcRetry(p) => {
                    let Some(op) = self.procs[p].pending else {
                        let detail = format!("retry of processor {p} with no pending op");
                        return Err(SimError::InvariantViolation(
                            self.post_mortem(t, detail),
                        ));
                    };
                    self.execute(t, p, op);
                }
                EvLog::Deliver(msg) => {
                    if let Some(tb) = self.cfg.trace_block {
                        if msg.kind.block() == Some(tb) {
                            eprintln!("[{t:>8}] {:?}", msg);
                        }
                    }
                    self.deliver(t, msg);
                }
                EvLog::Replay { home, block } => {
                    if let Some(req) = self.clusters[home].ser.pop_ready(block) {
                        self.home_request(t, home, req.requester, req.block, req.is_write);
                    }
                    self.drain(t, home, block);
                }
            }
            if self.running == 0 && self.finish_time == 0 {
                self.finish_time = t;
                // Keep draining in-flight messages so the machine quiesces
                // and invariants can be checked.
            }
        }
        Ok(())
    }

    /// Post-drain validation: every processor retired, no leaked arena
    /// payloads, and (when configured) the quiescent coherence invariants.
    /// Shared by [`Machine::try_run`] and the exploration API's leaf check.
    fn finalize(&mut self) -> Result<RunStats, SimError> {
        // Close the stream first (no-op when off): the queue is drained,
        // so every recorded event can flush, and run_end belongs in the
        // stream whether the checks below pass or not.
        self.stream_close();
        if self.running != 0 {
            let detail = format!(
                "{} processors blocked with an empty event queue",
                self.running
            );
            return Err(SimError::Deadlock(
                self.post_mortem(self.queue.now(), detail),
            ));
        }
        if !self.arena.is_empty() {
            // Every scheduled delivery takes its payload out of the arena;
            // a drained queue with parked messages means a Deliver event
            // was lost (or a payload leaked).
            let detail = format!(
                "{} message(s) still parked in the arena after the event queue drained",
                self.arena.live()
            );
            return Err(SimError::InvariantViolation(
                self.post_mortem(self.queue.now(), detail),
            ));
        }
        if self.cfg.check_invariants {
            if let Err(e) = crate::checker::verify_quiescent(self) {
                return Err(SimError::InvariantViolation(
                    self.post_mortem(self.queue.now(), e.to_string()),
                ));
            }
        }
        Ok(self.collect())
    }

    /// Snapshot of the machine for a [`SimError`]. Boxed because the
    /// snapshot is large and `try_run`'s `Ok` path should stay lean.
    fn post_mortem(&self, cycle: Cycle, detail: String) -> Box<PostMortem> {
        let blocked_procs = self
            .procs
            .iter()
            .enumerate()
            .filter(|(_, st)| st.status != ProcStatus::Done)
            .map(|(p, st)| BlockedProc {
                proc: p,
                status: format!("{:?}", st.status),
                pending: st.pending.map(|op| format!("{op:?}")),
                blocked_since: st.blocked_since,
            })
            .collect();
        let clusters: Vec<ClusterDiag> = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, n)| n.rac.outstanding() > 0 || n.ser.busy_blocks() > 0)
            .map(|(c, n)| ClusterDiag {
                cluster: c,
                mshrs: n.rac.outstanding(),
                busy: n
                    .ser
                    .debug_state()
                    .into_iter()
                    .map(|(b, reason, queued)| (b, format!("{reason:?}"), queued))
                    .collect(),
            })
            .collect();
        // Attach each stuck cluster's recent trace history (empty when
        // tracing is off): the transaction-level view of what the cluster
        // was doing when the run died.
        const TAIL_EVENTS: usize = 16;
        let trace_tails = if self.trace_active {
            clusters
                .iter()
                .map(|d: &ClusterDiag| d.cluster)
                .filter_map(|c| {
                    let tail = self.tracer.tail(c, TAIL_EVENTS);
                    (!tail.is_empty())
                        .then(|| (c, tail.iter().map(TraceEvent::render).collect()))
                })
                .collect()
        } else {
            Vec::new()
        };
        Box::new(PostMortem {
            cycle,
            running: self.running,
            blocked_procs,
            clusters,
            recent_events: self
                .event_log
                .iter()
                .map(|(at, ev)| format!("[{at:>8}] {ev:?}"))
                .collect(),
            trace_tails,
            dropped_events: self.tracer.dropped(),
            counters: self.counters,
            faults: self.faults,
            detail,
        })
    }

    fn collect(&self) -> RunStats {
        let mut sparse: Option<scd_core::SparseStats> = None;
        let mut overflow: Option<scd_core::OverflowStats> = None;
        let mut live = 0;
        let mut lock_metrics = (0u64, 0u64);
        let mut queue_metrics = (0usize, 0u64);
        for c in &self.clusters {
            live += c.dir.live_entries();
            if let Some(s) = c.dir.sparse_stats() {
                let agg = sparse.get_or_insert_with(Default::default);
                agg.hits += s.hits;
                agg.misses += s.misses;
                agg.fills += s.fills;
                agg.replacements += s.replacements;
            }
            if let Some(o) = c.dir.overflow_stats() {
                let agg = overflow.get_or_insert_with(Default::default);
                agg.promotions += o.promotions;
                agg.demotions += o.demotions;
                agg.displacements += o.displacements;
                agg.fallback_evictions += o.fallback_evictions;
            }
            let (g, r) = c.locks.metrics();
            lock_metrics.0 += g;
            lock_metrics.1 += r;
            let (d, q) = c.ser.queue_metrics();
            queue_metrics.0 = queue_metrics.0.max(d);
            queue_metrics.1 += q;
        }
        RunStats {
            cycles: self.finish_time,
            traffic: self.traffic,
            invalidations: self.inval_hist.clone(),
            shared_reads: self.shared_reads,
            shared_writes: self.shared_writes,
            sync_ops: self.sync_ops,
            network: self.network.stats().clone(),
            sparse,
            overflow,
            l2_misses: self.clusters.iter().map(|c| c.caches.total_l2_misses()).sum(),
            lock_metrics,
            queue_metrics,
            live_dir_entries: live,
            protocol: self.counters,
            faults: self.faults,
            versions_assigned: self.versions_assigned,
            events_delivered: self.queue.delivered(),
            stalls: StallBreakdown {
                mem_stall: self.procs.iter().map(|p| p.mem_stall).collect(),
                sync_stall: self.procs.iter().map(|p| p.sync_stall).collect(),
                finish: self.procs.iter().map(|p| p.finish).collect(),
            },
        }
    }

    // ------------------------------------------------------------------
    // Processor-side execution
    // ------------------------------------------------------------------

    fn execute(&mut self, t: Cycle, p: usize, op: Op) {
        match op {
            Op::Done => {
                self.procs[p].status = ProcStatus::Done;
                self.procs[p].finish = t;
                self.running -= 1;
            }
            Op::Compute(c) => {
                let cl = self.cluster_of(p);
                self.sched(cl, t + c, Ev::ProcNext(p));
            }
            Op::Read(addr) => self.mem_access(t, p, addr, MshrKind::Read),
            Op::Write(addr) => self.mem_access(t, p, addr, MshrKind::Write),
            Op::Lock(l) => self.do_lock(t, p, l),
            Op::Unlock(l) => self.do_unlock(t, p, l),
            Op::Barrier(b) => self.do_barrier(t, p, b),
        }
    }

    fn mem_access(&mut self, t: Cycle, p: usize, addr: u64, kind: MshrKind) {
        let block = self.cfg.block_of(addr);
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let hit = self.clusters[cl].caches.access(lp, block, t);
        if let Some(state) = hit.state() {
            let lat = match hit {
                HitLevel::L1(_) => tm.l1_hit,
                _ => tm.l2_hit,
            };
            if kind == MshrKind::Read {
                self.observe(cl, block);
                self.resume(t + lat, p);
                return;
            }
            if state == LineState::Dirty {
                self.observe(cl, block);
                self.resume(t + lat, p);
                return;
            }
            // Write hit on a shared line: ownership upgrade required.
        }
        self.miss_path(t + tm.l2_hit, p, block, kind);
    }

    fn miss_path(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        if self.cfg.trace_block == Some(block) {
            eprintln!(
                "[{t:>8}] proc {p} (cl {cl}): miss {kind:?}, dirty_holder={:?} holds={}",
                self.clusters[cl].caches.dirty_holder(block),
                self.clusters[cl].caches.holds(block)
            );
        }
        let tm = self.cfg.timing;
        let home = self.cfg.home_of(block);

        // Intra-cluster snoop: a peer with a copy supplies over the bus.
        if kind == MshrKind::Read {
            if let Some(q) = self.clusters[cl].caches.dirty_holder(block) {
                self.clusters[cl].caches.proc_mut(q).downgrade(block);
                self.fill(t, cl, lp, block, LineState::Shared);
                if home != cl {
                    // Keep the home directory and memory consistent: the
                    // cluster no longer holds the block dirty. Stamp the
                    // epoch being downgraded so the home can discard the
                    // notification if the cluster is re-granted ownership
                    // before it arrives.
                    let epoch = self.clusters[cl]
                        .last_owner_epoch
                        .get(&block)
                        .copied()
                        .unwrap_or(0);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: cl,
                            dst: home,
                            kind: MsgKind::SharingWriteback {
                                block,
                                requester: cl,
                                epoch,
                            },
                        },
                    );
                }
                self.observe(cl, block);
                self.resume(t + tm.bus_memory, p);
                return;
            }
            if self.clusters[cl].caches.holds(block) {
                // A clean peer copy satisfies the read bus-locally; the
                // directory already covers this cluster.
                self.fill(t, cl, lp, block, LineState::Shared);
                self.observe(cl, block);
                self.resume(t + tm.bus_memory, p);
                return;
            }
        }
        if kind == MshrKind::Write {
            if let Some(q) = self.clusters[cl].caches.dirty_holder(block) {
                if q != lp {
                    // Bus ownership transfer; the cluster remains owner.
                    self.clusters[cl].caches.proc_mut(q).invalidate(block);
                    self.fill(t, cl, lp, block, LineState::Dirty);
                    self.observe(cl, block);
                    self.resume(t + tm.bus_memory, p);
                    return;
                }
            }
        }

        // Remote (or local-home) transaction through the RAC.
        match self.clusters[cl].rac.start(block, kind, lp) {
            StartOutcome::IssueRequest => {
                self.trace_txn_begin(t, cl, block, kind == MshrKind::Write);
                let mk = if kind == MshrKind::Write {
                    MsgKind::WriteReq { block }
                } else {
                    MsgKind::ReadReq { block }
                };
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: mk,
                    },
                );
            }
            StartOutcome::Merged | StartOutcome::WaitAndReissue => {}
        }
        self.block(t, p, false);
    }

    fn fill(&mut self, t: Cycle, cl: usize, lp: usize, block: u64, state: LineState) {
        if let Some(ev) = self.clusters[cl].caches.fill(lp, block, state, t) {
            if ev.state == LineState::Dirty {
                let home = self.cfg.home_of(ev.block);
                self.clusters[cl].rac.note_writeback(ev.block);
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: MsgKind::Writeback { block: ev.block },
                    },
                );
            } else if self.cfg.replacement_hints
                && !self.clusters[cl].caches.holds(ev.block)
            {
                // The cluster's last clean copy left silently; tell the
                // home so a precise entry can forget us.
                let home = self.cfg.home_of(ev.block);
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: MsgKind::ReplacementHint { block: ev.block },
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Synchronization
    // ------------------------------------------------------------------

    fn do_lock(&mut self, t: Cycle, p: usize, l: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.lock_home(l);
        let st = self.clusters[cl].lock_state.entry(l).or_default();
        st.waiters.push_back(lp);
        let need_request = st.holder.is_none() && !st.requested;
        if need_request {
            st.requested = true;
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::LockReq { lock: l },
                },
            );
        }
        self.block(t, p, true);
    }

    fn do_unlock(&mut self, t: Cycle, p: usize, l: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.lock_home(l);
        let st = self
            .clusters[cl]
            .lock_state
            .get_mut(&l)
            .expect("unlock of never-acquired lock");
        assert_eq!(
            st.holder,
            Some(lp),
            "processor {p} released lock {l} it does not hold"
        );
        st.holder = None;
        if let Some(next) = st.waiters.pop_front() {
            // Intra-cluster handoff over the bus; the home still sees this
            // cluster as the holder.
            st.holder = Some(next);
            let g = self.global_proc(cl, next);
            self.resume(t + tm.sync_op, g);
        } else {
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::UnlockReq { lock: l },
                },
            );
        }
        self.resume(t + tm.sync_op, p);
    }

    fn do_barrier(&mut self, t: Cycle, p: usize, b: u32) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let home = self.cfg.barrier_home(b);
        let local = self.clusters[cl].barrier_local.entry(b).or_default();
        local.push(lp);
        let all_local = local.len() == self.cfg.procs_per_cluster;
        if all_local {
            self.send(
                t + tm.sync_op,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::BarrierArrive { barrier: b },
                },
            );
        }
        self.block(t, p, true);
    }

    // ------------------------------------------------------------------
    // Message delivery
    // ------------------------------------------------------------------

    fn deliver(&mut self, t: Cycle, msg: Msg) {
        let Msg { src, dst, kind } = msg;
        if self.trace_active && src != dst && self.tracer.messages_enabled() {
            self.tracer.record(
                dst,
                t,
                EventKind::MsgDeliver {
                    src: src as u32,
                    dst: dst as u32,
                    msg: kind.label(),
                    block: kind.block(),
                },
            );
        }
        if self.fault_active && src != dst && self.fault_plan.nack_prob > 0.0 {
            if let MsgKind::ReadReq { block } | MsgKind::WriteReq { block } = kind {
                let nack_prob = self.fault_plan.nack_prob;
                if self.nack_rng(src, dst).chance(nack_prob) {
                    // The home refuses the request without touching any
                    // state; the requester backs off and retries. Decided
                    // at delivery rather than in `home_request` so replayed
                    // parked requests are never refused — they already hold
                    // a queue slot.
                    self.faults.nacks += 1;
                    let was_write = matches!(kind, MsgKind::WriteReq { .. });
                    self.send(
                        t + self.cfg.timing.dir_lookup,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::Nack { block, was_write },
                        },
                    );
                    return;
                }
            }
        }
        match kind {
            MsgKind::ReadReq { block } => self.home_request(t, dst, src, block, false),
            MsgKind::WriteReq { block } => self.home_request(t, dst, src, block, true),
            MsgKind::Writeback { block } => self.on_writeback(t, dst, src, block),
            MsgKind::ReplacementHint { block } => {
                // Advisory: forget the sharer if the entry is precise and
                // not mid-transaction. A hint that crosses a newer
                // transaction is simply ignored — at worst the entry keeps
                // a stale (superset) pointer, which is always safe.
                if !self.clusters[dst].ser.is_busy(block) {
                    let key = self.dir_key(block);
                    if let Some(e) = self.clusters[dst].dir.lookup_mut(key, t) {
                        if !e.is_dirty() && e.is_precise() {
                            e.remove_sharer(src as NodeId);
                        }
                    }
                    self.clusters[dst].dir.release_if_empty(key);
                }
            }
            MsgKind::FwdRead {
                block,
                requester,
                epoch,
            } => self.on_forward(t, dst, src, block, requester, false, 0, epoch),
            MsgKind::FwdWrite {
                block,
                requester,
                version,
            } => self.on_forward(t, dst, src, block, requester, true, version, version - 1),
            MsgKind::SharingWriteback {
                block,
                requester,
                epoch,
            } => self.on_sharing_writeback(t, dst, src, block, requester, epoch),
            MsgKind::OwnershipTransfer { block, new_owner } => {
                self.on_ownership_transfer(t, dst, block, new_owner)
            }
            MsgKind::WritebackRace {
                block,
                requester,
                was_write,
            } => {
                self.counters.races += 1;
                if was_write {
                    self.clusters[dst].pending_write_bump.remove(&block);
                }
                let epoch = self.memory_version(dst, block);
                self.clusters[dst].ser.on_race(
                    block,
                    src,
                    epoch,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write: was_write,
                    },
                );
                let key = self.dir_key(block);
                if matches!(
                    self.clusters[dst].ser.reason(block),
                    Some(BusyReason::AwaitWriteback(_))
                ) {
                    // The race normally waits for the ex-owner's in-flight
                    // writeback. But if the recorded dirty epoch already
                    // ended by other means — an unsolicited downgrade
                    // (intra-cluster dirty sharing) landed while the
                    // forward was in flight, after which the clean line was
                    // silently evicted — no writeback is coming: the entry
                    // is no longer dirty and memory is current, so open the
                    // block immediately.
                    let still_dirty = self.clusters[dst]
                        .dir
                        .probe(key)
                        .is_some_and(|e| e.is_dirty());
                    if !still_dirty {
                        self.clusters[dst].ser.close(block);
                    }
                } else {
                    // Resolved against an *early* writeback. That writeback
                    // may have arrived before the ownership transfer that
                    // recorded `src` as owner (contention reorders the two
                    // channels), in which case its entry update was a no-op
                    // and the entry still names the evicted owner: clean it
                    // now, or the drained request would be re-forwarded to
                    // a cluster that has nothing.
                    let node = &mut self.clusters[dst];
                    if let Some(e) = node.dir.lookup_mut(key, t) {
                        if e.is_dirty() && e.owner() == Some(src as NodeId) {
                            e.clear();
                        }
                    }
                    node.dir.release_if_empty(key);
                }
                self.drain(t, dst, block);
            }
            MsgKind::ReadReply { block, version } => {
                if self.fault_active {
                    // Duplicated requests produce one reply per service;
                    // only the first finds the MSHR, the stray is dropped.
                    match self.clusters[dst].rac.try_read_reply(block) {
                        Some(mshr) => {
                            self.set_line_version(dst, block, version);
                            self.complete_read(t, dst, block, mshr);
                        }
                        None => self.faults.strays_dropped += 1,
                    }
                } else {
                    let mshr = self.clusters[dst].rac.read_reply(block);
                    self.set_line_version(dst, block, version);
                    self.complete_read(t, dst, block, mshr);
                }
            }
            MsgKind::WriteReply {
                block,
                inval_count,
                version,
            } => {
                if let Some(mshr) =
                    self.clusters[dst].rac.write_reply(block, inval_count, version)
                {
                    self.complete_write(t, dst, block, mshr);
                }
            }
            MsgKind::TransferReply { block, version } => {
                if let Some(mshr) = self.clusters[dst].rac.write_reply(block, 0, version) {
                    self.complete_write(t, dst, block, mshr);
                }
            }
            MsgKind::Nack { block, was_write } => {
                self.trace_nack(t, dst, block);
                match self.clusters[dst].rac.on_nack(block, was_write) {
                    Some(attempt) => {
                        // Reissue with exponential backoff so a refusing
                        // home is not hammered at network rate.
                        self.faults.retries += 1;
                        let base = self.cfg.timing.bus_memory.max(1);
                        let backoff = base << (attempt - 1).min(10);
                        self.trace_retry(t, dst, block, attempt, backoff);
                        let home = self.cfg.home_of(block);
                        let kind = if was_write {
                            MsgKind::WriteReq { block }
                        } else {
                            MsgKind::ReadReq { block }
                        };
                        self.send(t + backoff, Msg { src: dst, dst: home, kind });
                    }
                    // Stale: the transaction was already serviced (a
                    // duplicate's NACK crossed the real reply). Drop it.
                    None => self.faults.strays_dropped += 1,
                }
            }
            MsgKind::Inval { block, requester } => {
                let was_dirty = self.clusters[dst].caches.invalidate_all(block);
                debug_assert!(
                    !was_dirty,
                    "invalidation hit a dirty owner: block {block} at cluster {dst}                      (requester {requester}, t {t})"
                );
                // A reordered network (contention) can deliver this before
                // the data reply of an in-flight read that was serialized
                // *before* the invalidating write: the reply may satisfy
                // the waiting processors, but its line must not persist.
                self.clusters[dst].rac.poison_read(block);
                self.send(
                    t + 1,
                    Msg {
                        src: dst,
                        dst: requester,
                        kind: MsgKind::InvalAck { block },
                    },
                );
            }
            MsgKind::InvalAck { block } => {
                if self.clusters[dst].rac.has_mshr(block) {
                    if let Some(mshr) = self.clusters[dst].rac.inval_ack(block) {
                        self.complete_write(t, dst, block, mshr);
                    }
                }
                // else: fire-and-forget ack from a Dir_NB pointer eviction.
            }
            MsgKind::DirFlush {
                block,
                epoch,
                owner_flush,
            } => {
                let my_epoch = self.clusters[dst]
                    .last_owner_epoch
                    .get(&block)
                    .copied()
                    .unwrap_or(0);
                let write_mshr =
                    self.clusters[dst].rac.mshr_kind(block) == Some(MshrKind::Write);
                if epoch < my_epoch {
                    // The flush was decided against an *older* epoch of the
                    // entry than the ownership we have since completed: it
                    // is stale. Acknowledge (the home's bookkeeping needs
                    // it) but keep our current-epoch data.
                    self.send(
                        t + 1,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::DirFlushAck { block },
                        },
                    );
                } else if write_mshr
                    && (self.clusters[dst].rac.mshr_reply_received(block)
                        || (owner_flush && epoch > my_epoch))
                {
                    // The flush targets an ownership of ours that is still
                    // filling — either the grant reply arrived and acks are
                    // pending, or we are the flushed entry's recorded owner
                    // with the grant/transfer reply still in flight. Honour
                    // it once the write completes (safe: being the recorded
                    // owner means our request was already processed, so it
                    // is not queued behind this replacement).
                    self.clusters[dst].rac.defer_flush(block);
                } else {
                    // Drop any resident copy and poison a pending read, or
                    // an uncovered copy (or a reordered reply) could
                    // survive the flush.
                    self.clusters[dst].caches.invalidate_all(block);
                    self.clusters[dst].rac.poison_read(block);
                    self.send(
                        t + 1,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::DirFlushAck { block },
                        },
                    );
                }
            }
            MsgKind::DirFlushAck { block } => {
                if let Some((targets, requester, version)) =
                    self.clusters[dst].serial_chains.get_mut(&block)
                {
                    // SCI-style serial chain: acknowledge received, walk on.
                    if let Some(next) = targets.pop_front() {
                        let epoch = *version;
                        self.send(
                            t + self.cfg.timing.bus_memory,
                            Msg {
                                src: dst,
                                dst: next,
                                kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                            },
                        );
                    } else {
                        let (requester, version) = (*requester, *version);
                        self.clusters[dst].serial_chains.remove(&block);
                        self.clusters[dst].ser.close(block);
                        if requester == dst {
                            // The home cluster's own write: stay busy until
                            // its fill, as in the parallel path.
                            self.clusters[dst]
                                .ser
                                .mark_busy(block, BusyReason::AwaitHomeWrite);
                        }
                        self.send(
                            t + self.cfg.timing.bus_memory,
                            Msg {
                                src: dst,
                                dst: requester,
                                kind: MsgKind::WriteReply {
                                    block,
                                    inval_count: 0,
                                    version,
                                },
                            },
                        );
                        self.drain(t, dst, block);
                    }
                } else if self.clusters[dst].rac.replacement_pending(block)
                    && self.clusters[dst].rac.flush_ack(block)
                {
                    self.clusters[dst].ser.close(block);
                    self.drain(t, dst, block);
                }
                // (Acks from Dir_NB evictions have no pending replacement
                // and nothing waits on them.)
            }
            MsgKind::LockReq { lock } => {
                match self.clusters[dst].locks.acquire(lock, src) {
                    LockOutcome::Granted => {
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: src,
                                kind: MsgKind::LockGrant { lock },
                            },
                        );
                    }
                    // Queued: the grant comes on a later release.
                    // AlreadyHeld: duplicate of an already-granted request
                    // (a retry crossed the acquire) — drop it.
                    LockOutcome::Queued | LockOutcome::AlreadyHeld => {}
                }
            }
            MsgKind::LockGrant { lock } => {
                let decline = {
                    let st = self.clusters[dst].lock_state.entry(lock).or_default();
                    st.requested = false;
                    if st.holder.is_none() {
                        if let Some(lp) = st.waiters.pop_front() {
                            st.holder = Some(lp);
                            Some(lp)
                        } else {
                            None
                        }
                        .map(Ok)
                        .unwrap_or(Err(()))
                    } else {
                        Err(())
                    }
                };
                match decline {
                    Ok(lp) => {
                        let g = self.global_proc(dst, lp);
                        self.resume(t + self.cfg.timing.sync_op, g);
                    }
                    Err(()) => {
                        // Nobody is waiting locally (or we already hold it):
                        // hand the lock straight back.
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: src,
                                kind: MsgKind::UnlockReq { lock },
                            },
                        );
                    }
                }
            }
            MsgKind::LockRetry { lock } => {
                // Our queued request (if any) was dropped by the region
                // release: the `requested` flag is stale, so clear it and
                // re-request if processors are still waiting.
                let needs_retry = {
                    let st = self.clusters[dst].lock_state.entry(lock).or_default();
                    st.requested = false;
                    if st.holder.is_none() && !st.waiters.is_empty() {
                        st.requested = true;
                        true
                    } else {
                        false
                    }
                };
                if needs_retry {
                    let home = self.cfg.lock_home(lock);
                    self.send(
                        t + self.cfg.timing.sync_op,
                        Msg {
                            src: dst,
                            dst: home,
                            kind: MsgKind::LockReq { lock },
                        },
                    );
                }
            }
            MsgKind::UnlockReq { lock } => match self.clusters[dst].locks.release(lock, src) {
                UnlockOutcome::Free => {}
                UnlockOutcome::GrantTo(c) => {
                    self.send(
                        t + self.cfg.timing.sync_op,
                        Msg {
                            src: dst,
                            dst: c,
                            kind: MsgKind::LockGrant { lock },
                        },
                    );
                }
                UnlockOutcome::RetryRegion(members) => {
                    for m in members {
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: m,
                                kind: MsgKind::LockRetry { lock },
                            },
                        );
                    }
                }
            },
            MsgKind::BarrierArrive { barrier } => {
                if let Some(release) =
                    self.clusters[dst]
                        .barriers
                        .arrive(barrier, src, self.cfg.clusters)
                {
                    for c in release {
                        self.send(
                            t + self.cfg.timing.sync_op,
                            Msg {
                                src: dst,
                                dst: c,
                                kind: MsgKind::BarrierRelease { barrier },
                            },
                        );
                    }
                }
            }
            MsgKind::BarrierRelease { barrier } => {
                let local = self.clusters[dst]
                    .barrier_local
                    .remove(&barrier)
                    .expect("release for a barrier nobody reached");
                for lp in local {
                    let g = self.global_proc(dst, lp);
                    self.resume(t + self.cfg.timing.sync_op, g);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Home-side protocol
    // ------------------------------------------------------------------

    fn home_request(&mut self, t: Cycle, home: usize, requester: usize, block: u64, is_write: bool) {
        let tm = self.cfg.timing;
        let tracing = self.cfg.trace_block == Some(block);
        if self.clusters[home].ser.is_busy(block) {
            if tracing {
                eprintln!("[{t:>8}] home {home}: queue req from {requester} (w={is_write})");
            }
            self.clusters[home].ser.queue(
                block,
                scd_protocol::QueuedReq {
                    requester,
                    block,
                    is_write,
                },
            );
            return;
        }

        self.trace_txn_phase(t, home, requester, block, Phase::HomeLookup);

        // Home bus snoop: keep/make the home cluster's own copies coherent.
        if is_write {
            // Home copies are invalidated over the bus (a dirty home copy
            // conceptually flushes to memory first).
            self.clusters[home].caches.invalidate_all(block);
        } else {
            // A dirty home copy supplies the data; it is downgraded and
            // memory is now clean.
            self.clusters[home].caches.downgrade_all(block);
        }

        let (action, replacement) = self.dir_decide(t, home, requester, block, is_write);
        if tracing {
            let d = match &action {
                DirAction::Stalled { blocker } => format!("stalled on {blocker}"),
                DirAction::SelfOwned => "self-owned park".into(),
                DirAction::Forward { owner } => format!("forward to {owner}"),
                DirAction::Supply { nb_evict } => format!("supply (nb_evict {nb_evict:?})"),
                DirAction::Grant { inval_targets } => format!("grant (invals {inval_targets:?})"),
            };
            eprintln!(
                "[{t:>8}] home {home}: req from {requester} (w={is_write}) -> {d}; entry now {:?}",
                self.clusters[home].dir.probe(self.dir_key(block)).map(|e| e.sharer_superset())
            );
        }

        if let Some(rep) = replacement {
            self.dispatch_replacement(t, home, rep);
        }

        match action {
            DirAction::Stalled { blocker } => {
                self.counters.sparse_stalls += 1;
                self.clusters[home].ser.queue(
                    blocker,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write,
                    },
                );
            }
            DirAction::SelfOwned => {
                // The requester is the recorded owner: its writeback is in
                // flight — unless it already arrived *before* the transfer
                // that recorded the requester as owner (contention can
                // reorder the two channels). In that case the dirty epoch
                // is over: clear the record and process the request afresh.
                let park_epoch = self.memory_version(home, block);
                if let Some(kind) =
                    self.clusters[home].ser.take_early(block, requester, park_epoch)
                {
                    let key = self.dir_key(block);
                    if let Some(e) = self.clusters[home].dir.lookup_mut(key, t) {
                        if e.is_dirty() && e.owner() == Some(requester as NodeId) {
                            match kind {
                                EarlyKind::Writeback => e.clear(),
                                EarlyKind::Downgrade => e.make_shared(&[requester as NodeId]),
                            }
                        }
                    }
                    self.clusters[home].dir.release_if_empty(key);
                    return self.home_request(t, home, requester, block, is_write);
                }
                if self.fault_active {
                    // Under fault injection a request from the recorded
                    // owner may be a duplicate or a reordered retry, not
                    // evidence of an in-flight writeback; parking for a
                    // writeback that never comes would deadlock. NAK it
                    // instead (as the real DASH directory does): a genuine
                    // requester retries until its writeback lands, while a
                    // stale duplicate's NACK is dropped at the RAC.
                    self.faults.nacks += 1;
                    self.send(
                        t + tm.dir_lookup,
                        Msg {
                            src: home,
                            dst: requester,
                            kind: MsgKind::Nack {
                                block,
                                was_write: is_write,
                            },
                        },
                    );
                    return;
                }
                self.counters.self_owned_parks += 1;
                self.clusters[home].ser.park_for_writeback(
                    block,
                    requester,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write,
                    },
                );
            }
            DirAction::Forward { owner } => {
                self.counters.forwards += 1;
                if is_write {
                    // Ownership transfer: zero invalidations.
                    self.inval_hist.record(0);
                    self.trace_inval(t, home, block, 0, "write");
                }
                self.clusters[home]
                    .ser
                    .mark_busy(block, BusyReason::AwaitClose);
                let kind = if is_write {
                    // The home assigns the new ownership epoch's version at
                    // forward time; the owner echoes it in its reply. The
                    // epoch being *taken over* is version - 1.
                    let version = self.bump_version(home, block);
                    self.clusters[home].pending_write_bump.insert(block);
                    MsgKind::FwdWrite {
                        block,
                        requester,
                        version,
                    }
                } else {
                    MsgKind::FwdRead {
                        block,
                        requester,
                        epoch: self.memory_version(home, block),
                    }
                };
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: owner,
                        kind,
                    },
                );
            }
            DirAction::Supply { nb_evict } => {
                if let Some(victim) = nb_evict {
                    self.counters.nb_evictions += 1;
                    // Dir_NB pointer overflow: one sharer loses its copy so
                    // the new reader can be recorded (an invalidation event
                    // of size 1, §6.1 Figure 4).
                    self.inval_hist.record(1);
                    self.trace_inval(t, home, block, 1, "nb_evict");
                    let epoch = self.memory_version(home, block);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: victim,
                            kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                        },
                    );
                }
                let version = self.memory_version(home, block);
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: requester,
                        kind: MsgKind::ReadReply { block, version },
                    },
                );
            }
            DirAction::Grant { inval_targets } => {
                self.inval_hist.record(inval_targets.len());
                self.trace_inval(t, home, block, inval_targets.len() as u32, "write");
                if !inval_targets.is_empty() {
                    self.trace_txn_phase(t, home, requester, block, Phase::Fanout);
                }
                let version = self.bump_version(home, block);
                if self.cfg.serial_invalidations && !inval_targets.is_empty() {
                    // SCI-style: walk the sharers one at a time. The block
                    // stays busy; the requester gets its ownership reply
                    // only after the chain completes.
                    let mut targets: std::collections::VecDeque<usize> =
                        inval_targets.iter().map(|n| n as usize).collect();
                    let first = targets.pop_front().expect("non-empty");
                    self.clusters[home]
                        .serial_chains
                        .insert(block, (targets, requester, version));
                    self.clusters[home]
                        .ser
                        .mark_busy(block, BusyReason::AwaitFlushAcks);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: first,
                            kind: MsgKind::DirFlush { block, epoch: version, owner_flush: false },
                        },
                    );
                    return;
                }
                if requester == home {
                    // The entry was cleared (home ownership is bus-tracked),
                    // but the home's own write is still in flight until all
                    // acknowledgements arrive; conflicting requests must not
                    // slip in between and see an uncached block.
                    self.clusters[home]
                        .ser
                        .mark_busy(block, BusyReason::AwaitHomeWrite);
                }
                let mut members: Vec<usize> = Vec::new();
                inval_targets.for_each_member(|c| members.push(c as usize));
                if self.mutation == Some(explore::Mutation::SkipInval) {
                    // Test-only protocol bug: silently forget one sharer.
                    // The ack count is lowered to match so the write still
                    // completes — leaving a coherence violation (a stale
                    // copy outliving the new ownership epoch) rather than a
                    // deadlock, which is the class of bug the model checker
                    // exists to catch.
                    members.pop();
                }
                let n = members.len() as u32;
                for c in members {
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: c,
                            kind: MsgKind::Inval { block, requester },
                        },
                    );
                }
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: requester,
                        kind: MsgKind::WriteReply {
                            block,
                            inval_count: n,
                            version,
                        },
                    },
                );
            }
        }
    }

    /// Flushes a displaced directory entry's cached copies: DirFlush to
    /// every covered cluster, acks collected at the home RAC, the victim
    /// block busy until they all arrive. Used by sparse replacements and
    /// overflow wide-victim displacements alike.
    fn dispatch_replacement(&mut self, t: Cycle, home: usize, rep: ReplacementWork) {
        if rep.targets.is_empty() {
            return;
        }
        let tm = self.cfg.timing;
        self.counters.replacement_flushes += 1;
        if self.trace_active {
            self.tracer.record(
                home,
                t,
                EventKind::Replacement {
                    victim: rep.victim_key,
                    targets: rep.targets.len() as u32,
                    dirty: rep.dirty_owner.is_some(),
                },
            );
        }
        let epoch = self.memory_version(home, rep.victim_key);
        let n = rep.targets.len() as u32;
        rep.targets.for_each_member(|c| {
            let c = c as usize;
            self.send(
                t + tm.bus_memory,
                Msg {
                    src: home,
                    dst: c,
                    kind: MsgKind::DirFlush {
                        block: rep.victim_key,
                        epoch,
                        owner_flush: rep.dirty_owner == Some(c),
                    },
                },
            );
        });
        self.clusters[home].rac.start_replacement(rep.victim_key, n);
        self.clusters[home]
            .ser
            .mark_busy(rep.victim_key, BusyReason::AwaitFlushAcks);
    }

    /// Converts a displaced entry into replacement work (targets exclude
    /// the home cluster, whose copies are bus-tracked).
    fn replacement_work(&self, home: usize, victim_block: u64, victim: &scd_core::DirEntry) -> ReplacementWork {
        let mut targets = victim.sharer_superset();
        targets.remove(home as NodeId);
        ReplacementWork {
            victim_key: victim_block,
            targets,
            dirty_owner: victim.is_dirty().then(|| victim.owner()).flatten().map(|n| n as usize),
        }
    }

    /// Registers `node` as a sharer at the home, translating the store's
    /// organization-specific outcome (NB eviction, overflow displacement)
    /// into protocol actions. Returns the NB-eviction target, if any.
    fn register_sharer(
        &mut self,
        t: Cycle,
        home: usize,
        block: u64,
        node: usize,
    ) -> Option<usize> {
        let key = self.dir_key(block);
        let clusters = self.cfg.clusters as u64;
        let outcome = {
            let node_ref = &mut self.clusters[home];
            let ser = &node_ref.ser;
            node_ref
                .dir
                .record_sharer(key, node as NodeId, t, |k| {
                    ser.is_busy(k * clusters + home as u64)
                })
        };
        match outcome {
            scd_core::RecordSharer::Recorded => None,
            scd_core::RecordSharer::Evict(v) => Some(v as usize),
            scd_core::RecordSharer::Displaced { victim_key, victim } => {
                let victim_block = victim_key * clusters + home as u64;
                let rep = self.replacement_work(home, victim_block, &victim);
                self.dispatch_replacement(t, home, rep);
                None
            }
        }
    }

    /// All directory-entry mutation for one request, returning plain data.
    fn dir_decide(
        &mut self,
        t: Cycle,
        home: usize,
        requester: usize,
        block: u64,
        is_write: bool,
    ) -> (DirAction, Option<ReplacementWork>) {
        let key = self.dir_key(block);
        let clusters = self.cfg.clusters as u64;
        let patterns_active = self.patterns_active;
        let node = &mut self.clusters[home];
        let ser = &node.ser;
        let mut replacement = None;
        // Fan-out precision sample, captured as plain data while the entry
        // borrow is live and applied after it ends (the "present" check
        // needs read access to every cluster's caches).
        let mut fanout_sample: Option<(bool, scd_core::ReprKind, Option<usize>, NodeSet)> = None;
        // The pin check and the victim/blocker results translate between
        // home-local directory keys and global block numbers.
        let access = node
            .dir
            .entry_mut(key, t, |k| ser.is_busy(k * clusters + home as u64));
        let entry = match access {
            EntryAccess::Stalled { blocker } => {
                return (
                    DirAction::Stalled {
                        blocker: blocker * clusters + home as u64,
                    },
                    None,
                );
            }
            EntryAccess::Ready(e) => e,
            EntryAccess::Displaced {
                victim_key,
                victim,
                entry,
            } => {
                let mut targets = victim.sharer_superset();
                targets.remove(home as NodeId);
                replacement = Some(ReplacementWork {
                    victim_key: victim_key * clusters + home as u64,
                    targets,
                    dirty_owner: victim
                        .is_dirty()
                        .then(|| victim.owner())
                        .flatten()
                        .map(|n| n as usize),
                });
                entry
            }
        };

        let action = match entry.state() {
            DirState::Dirty => {
                let owner = entry.owner().expect("dirty entry has an owner") as usize;
                if owner == requester {
                    DirAction::SelfOwned
                } else {
                    DirAction::Forward { owner }
                }
            }
            _ => {
                if is_write {
                    let mut targets = entry.invalidation_targets(requester as NodeId);
                    targets.remove(home as NodeId);
                    if patterns_active {
                        fanout_sample = Some((
                            entry.is_precise(),
                            entry.repr_kind(),
                            entry.coarse_regions_set(),
                            targets.clone(),
                        ));
                    }
                    if requester == home {
                        // The home cluster's ownership is tracked by its bus
                        // snoop, not the directory.
                        entry.clear();
                    } else {
                        entry.make_dirty(requester as NodeId);
                    }
                    DirAction::Grant {
                        inval_targets: targets,
                    }
                } else {
                    // The sharer is recorded below, once the entry borrow
                    // ends (the organization may promote/displace).
                    DirAction::Supply { nb_evict: None }
                }
            }
        };
        let action = if let DirAction::Supply { .. } = action {
            let nb_evict = if requester != home {
                self.register_sharer(t, home, block, requester)
            } else {
                None
            };
            DirAction::Supply { nb_evict }
        } else {
            action
        };
        // Release only after any sharer registration (the entry may have
        // been empty until the new sharer was recorded).
        self.clusters[home].dir.release_if_empty(key);
        if let Some((precise, kind, regions, targets)) = fanout_sample {
            self.observe_fanout(block, precise, kind, regions, &targets);
        }
        (action, replacement)
    }

    /// Folds one write fan-out into the occupancy telemetry: how precise
    /// the entry's representation was, and how much of the invalidation
    /// superset actually held the block ("present" — the rest is
    /// imprecision waste). Only called when `patterns_active`.
    fn observe_fanout(
        &mut self,
        block: u64,
        precise: bool,
        kind: scd_core::ReprKind,
        regions: Option<usize>,
        targets: &NodeSet,
    ) {
        let mut present = 0u64;
        targets.for_each_member(|c| {
            if self.clusters[c as usize].caches.holds(block) {
                present += 1;
            }
        });
        let o = &mut self.obs;
        o.fanout_events += 1;
        if precise {
            o.fanout_precise += 1;
        }
        if kind == scd_core::ReprKind::Broadcast {
            o.fanout_broadcast += 1;
        }
        o.fanout_targets += targets.len() as u64;
        o.fanout_present += present;
        if let Some(r) = regions {
            o.coarse_events += 1;
            o.coarse_regions += r as u64;
            o.coarse_covered += targets.len() as u64;
            o.coarse_present += present;
        }
    }

    /// Schedules the next replay of a parked request, if any. Replays run
    /// as real events `dir_lookup` apart, so the directory's state
    /// mutations and message emissions stay in timestamp order (a burst of
    /// parked readers, e.g. LU's pivot column, also cannot complete in
    /// zero home time).
    fn drain(&mut self, t: Cycle, home: usize, block: u64) {
        if !self.clusters[home].ser.is_busy(block)
            && self.clusters[home].ser.pending_len(block) > 0
        {
            self.sched(home, t + self.cfg.timing.dir_lookup, Ev::Replay { home, block });
        }
    }

    // ------------------------------------------------------------------
    // Owner-side protocol
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_forward(
        &mut self,
        t: Cycle,
        owner: usize,
        home: usize,
        block: u64,
        requester: usize,
        is_write: bool,
        version: u64,
        addressed_epoch: u64,
    ) {
        let tm = self.cfg.timing;
        let write_mshr =
            self.clusters[owner].rac.mshr_kind(block) == Some(MshrKind::Write);
        let my_epoch = self.clusters[owner]
            .last_owner_epoch
            .get(&block)
            .copied()
            .unwrap_or(0);
        if self.cfg.trace_block == Some(block) {
            eprintln!(
                "[{t:>8}] owner {owner}: forward(w={is_write}) req={requester} holds={} write_mshr={write_mshr} addressed_epoch={addressed_epoch} my_epoch={my_epoch}",
                self.clusters[owner].caches.holds(block)
            );
        }
        debug_assert!(
            addressed_epoch >= my_epoch,
            "forward addressed to a stale epoch ({addressed_epoch} < {my_epoch})"
        );
        if addressed_epoch > my_epoch {
            // The forward addresses an ownership epoch we have not
            // completed yet: it is our pending grant, whose reply (or
            // transfer) is still in flight — possibly reordered behind the
            // forward by a contended network. Any resident copy predates
            // the grant and must not answer; service after the write
            // completes.
            debug_assert!(
                write_mshr,
                "forward for a future epoch without a pending write"
            );
            self.clusters[owner]
                .rac
                .defer_forward(block, requester, is_write, version);
        } else if self.clusters[owner].caches.holds(block) {
            // The forward addresses the epoch we completed and we still
            // hold the data (possibly downgraded): supply it directly —
            // even if a *new* request of ours is queued at the home behind
            // this very forward (servicing is what unblocks that queue).
            self.service_forward(t, owner, home, block, requester, is_write, version);
        } else {
            // No copy, no pending grant: the record is a previous ownership
            // epoch whose eviction writeback is in flight.
            debug_assert!(
                self.clusters[owner].rac.writeback_in_flight(block) || !write_mshr,
                "race branch without a writeback in flight"
            );
            // The block was evicted; its writeback is in flight to the home.
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::WritebackRace {
                        block,
                        requester,
                        was_write: is_write,
                    },
                },
            );
        }
    }

    /// The owner-side service of a forwarded request, used both when the
    /// forward finds the copy resident and when it was deferred behind the
    /// owner's own completing write.
    #[allow(clippy::too_many_arguments)]
    fn service_forward(
        &mut self,
        t: Cycle,
        owner: usize,
        home: usize,
        block: u64,
        requester: usize,
        is_write: bool,
        version: u64,
    ) {
        let tm = self.cfg.timing;
        if is_write {
            self.clusters[owner].caches.invalidate_all(block);
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: requester,
                    kind: MsgKind::TransferReply { block, version },
                },
            );
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::OwnershipTransfer {
                        block,
                        new_owner: requester,
                    },
                },
            );
        } else {
            self.clusters[owner].caches.downgrade_all(block);
            let v = if self.cfg.track_versions {
                self.clusters[owner]
                    .line_version
                    .get(&block)
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            };
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: requester,
                    kind: MsgKind::ReadReply { block, version: v },
                },
            );
            let epoch = self.clusters[owner]
                .last_owner_epoch
                .get(&block)
                .copied()
                .unwrap_or(0);
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::SharingWriteback {
                        block,
                        requester,
                        epoch,
                    },
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Transaction-closing messages at the home
    // ------------------------------------------------------------------

    fn on_sharing_writeback(
        &mut self,
        t: Cycle,
        home: usize,
        owner: usize,
        block: u64,
        requester: usize,
        epoch: u64,
    ) {
        // A forwarded-read close carries the *requester* the owner replied
        // to; an unsolicited downgrade (intra-cluster dirty sharing) names
        // the owner itself. The distinction matters: an unsolicited SWB can
        // arrive while a forward to the same owner is still in flight, and
        // must not steal that transaction's close.
        let closing = self.clusters[home].ser.reason(block) == Some(BusyReason::AwaitClose)
            && requester != owner;
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        if closing {
            node.pending_write_bump.remove(&block);
            let mut sharers: Vec<NodeId> = Vec::with_capacity(2);
            if owner != home {
                sharers.push(owner as NodeId);
            }
            if requester != home && requester != owner {
                sharers.push(requester as NodeId);
            }
            // Register the downgraded owner and the requester one by one
            // through the store, so each organization applies its overflow
            // policy (Dir_i NB with i == 1 evicts the first registration;
            // an overflow directory may promote and displace a wide
            // victim). NB evictions are flushed like any other
            // pointer-overflow eviction.
            node.dir
                .lookup_mut(key, t)
                .expect("busy entries are pinned")
                .clear();
            let mut evicted: Vec<usize> = Vec::new();
            for &sh in &sharers {
                if let Some(v) = self.register_sharer(t, home, block, sh as usize) {
                    evicted.push(v);
                }
            }
            if self.cfg.trace_block == Some(block) {
                eprintln!(
                    "[{t:>8}] home {home}: SWB close owner={owner} req={requester}; entry {:?}; evicted {evicted:?}",
                    self.clusters[home].dir.probe(self.dir_key(block)).map(|e| e.sharer_superset())
                );
            }
            self.clusters[home].dir.release_if_empty(key);
            self.clusters[home].ser.close(block);
            let epoch = self.memory_version(home, block);
            for v in evicted {
                self.counters.nb_evictions += 1;
                self.inval_hist.record(1);
                self.trace_inval(t, home, block, 1, "swb_evict");
                self.send(
                    t + self.cfg.timing.bus_memory,
                    Msg {
                        src: home,
                        dst: v,
                        kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                    },
                );
            }
            self.drain(t, home, block);
        } else {
            // Unsolicited downgrade (intra-cluster dirty sharing): apply it
            // only if the directory still records the *same epoch* of the
            // sender's ownership — the sender may have been re-granted
            // ownership (a newer epoch) while this notification was in
            // flight, in which case it is stale. The recorded owner's
            // epoch is `cur_version`, minus one while a FwdWrite's bump is
            // pending.
            let cur = node.cur_version.get(&block).copied().unwrap_or(0);
            let recorded_epoch =
                cur - u64::from(node.pending_write_bump.contains(&block));
            let mut applied = false;
            if epoch == recorded_epoch {
                if let Some(entry) = node.dir.lookup_mut(key, t) {
                    if entry.is_dirty() && entry.owner() == Some(owner as NodeId) {
                        entry.make_shared(&[owner as NodeId]);
                        applied = true;
                    }
                }
            }
            if applied {
                // If requests were parked waiting for this owner's dirty
                // epoch to end (a self-owned park expecting a writeback),
                // the downgrade notification is exactly that evidence.
                if node.ser.reason(block) == Some(BusyReason::AwaitWriteback(owner)) {
                    node.ser.close(block);
                    self.drain(t, home, block);
                }
            } else if node.ser.is_busy(block) && epoch == cur {
                // The notification outran the transfer that will record
                // `owner` as the owner: remember the downgrade so the
                // transfer (or a self-owned park) can account for it.
                node.ser.record_early(block, owner, epoch, EarlyKind::Downgrade);
            }
        }
    }

    fn on_ownership_transfer(&mut self, t: Cycle, home: usize, block: u64, new_owner: usize) {
        assert_eq!(
            self.clusters[home].ser.reason(block),
            Some(BusyReason::AwaitClose),
            "ownership transfer must close a forwarded write"
        );
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        node.pending_write_bump.remove(&block);
        // If the new owner's eviction writeback (or downgrade notification)
        // outran this transfer, its dirty epoch is already over.
        let epoch = node.cur_version.get(&block).copied().unwrap_or(0);
        let early = node.ser.take_early(block, new_owner, epoch);
        let entry = node
            .dir
            .lookup_mut(key, t)
            .expect("busy entries are pinned");
        match (new_owner == home, early) {
            (true, _) | (false, Some(EarlyKind::Writeback)) => entry.clear(),
            (false, Some(EarlyKind::Downgrade)) => {
                entry.make_shared(&[new_owner as NodeId])
            }
            (false, None) => entry.make_dirty(new_owner as NodeId),
        }
        node.dir.release_if_empty(key);
        node.ser.close(block);
        self.drain(t, home, block);
    }

    fn on_writeback(&mut self, t: Cycle, home: usize, owner: usize, block: u64) {
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        if let Some(entry) = node.dir.lookup_mut(key, t) {
            if entry.is_dirty() && entry.owner() == Some(owner as NodeId) {
                entry.clear();
            }
        }
        let epoch = node.cur_version.get(&block).copied().unwrap_or(0);
        node.dir.release_if_empty(key);
        if node.ser.on_writeback(block, owner, epoch) {
            self.drain(t, home, block);
        }
    }

    // ------------------------------------------------------------------
    // Requester-side completion
    // ------------------------------------------------------------------

    fn complete_read(&mut self, t: Cycle, cl: usize, block: u64, mshr: scd_protocol::Mshr) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        for &(lp, kind) in &mshr.waiters {
            if kind == MshrKind::Read {
                if !mshr.poisoned {
                    self.fill(t, cl, lp, block, LineState::Shared);
                }
                self.observe(cl, block);
                let g = self.global_proc(cl, lp);
                self.resume(t + tm.l1_hit, g);
            } else {
                // Write waiter merged behind a read: reissue for ownership.
                let g = self.global_proc(cl, lp);
                self.retry(t + tm.l1_hit, g);
            }
        }
        self.finish_flush_if_deferred(t, cl, block, mshr.flush_pending);
    }

    fn complete_write(&mut self, t: Cycle, cl: usize, block: u64, mshr: scd_protocol::Mshr) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        let (writer, _) = *mshr
            .waiters
            .first()
            .expect("write MSHR has its initiating processor");
        // Stale local shared copies vanish over the bus.
        self.clusters[cl].caches.invalidate_others(writer, block);
        self.fill(t, cl, writer, block, LineState::Dirty);
        self.clusters[cl]
            .last_owner_epoch
            .insert(block, mshr.version);
        self.set_line_version(cl, block, mshr.version);
        self.observe(cl, block);
        let g = self.global_proc(cl, writer);
        self.resume(t + tm.l1_hit, g);
        for &(lp, _) in &mshr.waiters[1..] {
            // Peers re-execute; they will hit the fresh copy over the bus.
            let g = self.global_proc(cl, lp);
            self.retry(t + tm.bus_memory, g);
        }
        if let Some((requester, is_write, version)) = mshr.deferred_forward {
            let home = self.cfg.home_of(block);
            self.service_forward(t, cl, home, block, requester, is_write, version);
        }
        self.finish_flush_if_deferred(t, cl, block, mshr.flush_pending);
        // A home-cluster write holds its block busy from grant to fill.
        let home = self.cfg.home_of(block);
        if home == cl
            && self.clusters[home].ser.reason(block) == Some(BusyReason::AwaitHomeWrite)
        {
            self.clusters[home].ser.close(block);
            self.drain(t, home, block);
        }
    }

    fn finish_flush_if_deferred(&mut self, t: Cycle, cl: usize, block: u64, pending: bool) {
        if pending {
            // A DirFlush crossed our transaction: honour it now.
            self.clusters[cl].caches.invalidate_all(block);
            let home = self.cfg.home_of(block);
            self.send(
                t + 1,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::DirFlushAck { block },
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Introspection for the invariant checker
    // ------------------------------------------------------------------

    pub(crate) fn checker_view(&self) -> (&MachineConfig, Vec<ClusterView<'_>>) {
        let views = self
            .clusters
            .iter()
            .map(|c| (c.caches.cluster_resident(), &c.dir, &c.ser))
            .collect();
        (&self.cfg, views)
    }
}

/// Test-only hooks for hand-corrupting machine state, so the invariant
/// checker's error branches can be exercised without finding a protocol bug
/// that produces each corruption naturally. Not part of the public API.
#[doc(hidden)]
pub mod testing {
    use super::*;

    fn entry_of(m: &mut Machine, home: usize, block: u64) -> &mut scd_core::DirEntry {
        let key = m.dir_key(block);
        match m.clusters[home].dir.entry_mut(key, 0, |_| false) {
            EntryAccess::Ready(e) | EntryAccess::Displaced { entry: e, .. } => e,
            EntryAccess::Stalled { .. } => unreachable!("no pinned entries in a fresh machine"),
        }
    }

    /// Installs a copy of `block` (dirty or shared) in processor `lp` of
    /// `cluster`, bypassing the protocol.
    pub fn fill_line(m: &mut Machine, cluster: usize, lp: usize, block: u64, dirty: bool) {
        let state = if dirty { LineState::Dirty } else { LineState::Shared };
        m.clusters[cluster].caches.fill(lp, block, state, 0);
    }

    /// Forces the home directory entry for `block` to Dirty with `owner`.
    pub fn force_dirty_entry(m: &mut Machine, home: usize, block: u64, owner: usize) {
        entry_of(m, home, block).make_dirty(owner as NodeId);
    }

    /// Forces the home directory entry for `block` to Shared over `sharers`.
    pub fn force_shared_entry(m: &mut Machine, home: usize, block: u64, sharers: &[usize]) {
        let nodes: Vec<NodeId> = sharers.iter().map(|&s| s as NodeId).collect();
        entry_of(m, home, block).make_shared(&nodes);
    }

    /// Removes the home directory entry for `block` entirely.
    pub fn clear_entry(m: &mut Machine, home: usize, block: u64) {
        let key = m.dir_key(block);
        if let Some(e) = m.clusters[home].dir.lookup_mut(key, 0) {
            e.clear();
        }
        m.clusters[home].dir.release_if_empty(key);
    }

    /// Marks `block` busy in the home serializer, as if a transaction never
    /// closed.
    pub fn mark_busy(m: &mut Machine, home: usize, block: u64) {
        m.clusters[home].ser.mark_busy(block, BusyReason::AwaitClose);
    }
}
