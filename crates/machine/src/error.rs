//! Graceful failure reporting: [`SimError`] and its [`PostMortem`].
//!
//! A run that cannot complete — deadlock, cycle-budget exhaustion, a
//! coherence invariant violation, or the forward-progress watchdog firing —
//! used to abort with a bare `panic!`. [`crate::Machine::try_run`] instead
//! returns a [`SimError`] carrying a structured snapshot of the machine at
//! the moment of failure: which processors were blocked and on what,
//! per-cluster MSHR and home-serializer state, the tail of the event log,
//! and the protocol/fault counters. [`crate::Machine::run`] remains a thin
//! wrapper that panics with the formatted post-mortem, so infallible
//! callers keep their one-liner.

use crate::stats::{FaultCounters, ProtocolCounters};

/// One blocked (or otherwise unfinished) processor at failure time.
#[derive(Clone, Debug)]
pub struct BlockedProc {
    /// Global processor index.
    pub proc: usize,
    /// `Running`/`Blocked` status text.
    pub status: String,
    /// Debug rendering of the operation it was executing, if any.
    pub pending: Option<String>,
    /// Cycle at which it blocked (meaningful when status is `Blocked`).
    pub blocked_since: u64,
}

/// One cluster with protocol state still in flight at failure time.
#[derive(Clone, Debug)]
pub struct ClusterDiag {
    /// Cluster index.
    pub cluster: usize,
    /// Outstanding MSHRs in its Remote Access Cache.
    pub mshrs: usize,
    /// Busy home-serializer blocks: `(block, reason, queued requests)`.
    pub busy: Vec<(u64, String, usize)>,
}

/// Snapshot of the machine at the moment a run failed.
#[derive(Clone, Debug)]
pub struct PostMortem {
    /// Simulated cycle of the failure.
    pub cycle: u64,
    /// Processors not yet finished.
    pub running: usize,
    /// Every unfinished processor, with what it was stuck on.
    pub blocked_procs: Vec<BlockedProc>,
    /// Every cluster with outstanding MSHRs or busy home blocks.
    pub clusters: Vec<ClusterDiag>,
    /// The last events the engine processed, oldest first (capacity set by
    /// `MachineConfig::event_log`; empty when disabled).
    pub recent_events: Vec<String>,
    /// Per-cluster trace tails for clusters with protocol state still in
    /// flight: `(cluster, rendered events, oldest first)`. Populated only
    /// when the machine ran with an active `TraceConfig`.
    pub trace_tails: Vec<(usize, Vec<String>)>,
    /// Trace events evicted from full rings before the failure: when
    /// nonzero, the tails above (and any exported trace) are missing
    /// that much history.
    pub dropped_events: u64,
    /// Rare-path protocol counters at failure time.
    pub counters: ProtocolCounters,
    /// Fault-injection counters at failure time.
    pub faults: FaultCounters,
    /// Failure-specific detail (e.g. the violated invariant).
    pub detail: String,
}

impl std::fmt::Display for PostMortem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "at cycle {}: {}", self.cycle, self.detail)?;
        writeln!(f, "  processors unfinished: {}", self.running)?;
        for p in &self.blocked_procs {
            write!(f, "  proc {}: {}", p.proc, p.status)?;
            if let Some(op) = &p.pending {
                write!(f, " on {op}")?;
            }
            if p.status == "Blocked" {
                write!(f, " since cycle {}", p.blocked_since)?;
            }
            writeln!(f)?;
        }
        for c in &self.clusters {
            writeln!(f, "  cluster {}: {} MSHRs, busy: {:?}", c.cluster, c.mshrs, c.busy)?;
        }
        writeln!(f, "  counters: {:?}", self.counters)?;
        if self.faults != FaultCounters::default() {
            writeln!(f, "  faults: {:?}", self.faults)?;
        }
        if !self.recent_events.is_empty() {
            writeln!(f, "  last {} events:", self.recent_events.len())?;
            for ev in &self.recent_events {
                writeln!(f, "    {ev}")?;
            }
        }
        for (cluster, tail) in &self.trace_tails {
            writeln!(f, "  cluster {cluster} trace tail ({} events):", tail.len())?;
            for ev in tail {
                writeln!(f, "    {ev}")?;
            }
        }
        if self.dropped_events > 0 {
            writeln!(
                f,
                "  trace rings evicted {} events (history above is truncated)",
                self.dropped_events
            )?;
        }
        Ok(())
    }
}

/// Why a simulation run could not complete.
///
/// The snapshot is boxed so the `Result` a run returns stays pointer-sized
/// on the (hot, always-`Ok`) success path.
#[derive(Clone, Debug)]
pub enum SimError {
    /// Processors were still blocked when the event queue drained.
    Deadlock(Box<PostMortem>),
    /// Simulated time exceeded `MachineConfig::max_cycles`.
    MaxCycles(Box<PostMortem>),
    /// The quiescent coherence check failed, or the engine hit an
    /// internally inconsistent state (e.g. a retry with no pending op).
    InvariantViolation(Box<PostMortem>),
    /// No operation retired for `MachineConfig::watchdog_cycles` cycles
    /// while processors were still unfinished (livelock — e.g. an
    /// unbounded NACK/retry storm).
    LivelockWatchdog(Box<PostMortem>),
}

impl SimError {
    /// The post-mortem snapshot, whatever the failure kind.
    pub fn post_mortem(&self) -> &PostMortem {
        match self {
            SimError::Deadlock(pm)
            | SimError::MaxCycles(pm)
            | SimError::InvariantViolation(pm)
            | SimError::LivelockWatchdog(pm) => pm,
        }
    }

    /// Short machine-readable failure kind.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::Deadlock(_) => "deadlock",
            SimError::MaxCycles(_) => "max-cycles",
            SimError::InvariantViolation(_) => "invariant-violation",
            SimError::LivelockWatchdog(_) => "livelock-watchdog",
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let headline = match self {
            SimError::Deadlock(_) => "deadlock: processors blocked with an empty event queue",
            SimError::MaxCycles(_) => "simulation exceeded max_cycles",
            SimError::InvariantViolation(_) => "coherence invariant violated",
            SimError::LivelockWatchdog(_) => {
                "livelock watchdog: no operation retired within the watchdog window"
            }
        };
        write!(f, "{headline}\n{}", self.post_mortem())
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> Box<PostMortem> {
        Box::new(PostMortem {
            cycle: 123,
            running: 1,
            blocked_procs: vec![BlockedProc {
                proc: 3,
                status: "Blocked".into(),
                pending: Some("Read(64)".into()),
                blocked_since: 100,
            }],
            clusters: vec![ClusterDiag {
                cluster: 0,
                mshrs: 1,
                busy: vec![(4, "AwaitClose".into(), 2)],
            }],
            recent_events: vec!["[120] Deliver(..)".into()],
            trace_tails: vec![(0, vec!["[     110] #7 TxnBegin { .. }".into()])],
            dropped_events: 42,
            counters: ProtocolCounters::default(),
            faults: FaultCounters::default(),
            detail: "1 processors blocked".into(),
        })
    }

    #[test]
    fn display_names_the_blocked_processor() {
        let err = SimError::Deadlock(pm());
        let text = err.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("proc 3"), "{text}");
        assert!(text.contains("Read(64)"), "{text}");
        assert!(text.contains("cluster 0"), "{text}");
        assert!(text.contains("[120]"), "{text}");
        assert!(text.contains("trace tail (1 events)"), "{text}");
        assert!(text.contains("TxnBegin"), "{text}");
        assert!(text.contains("evicted 42 events"), "{text}");
    }

    #[test]
    fn kinds_are_distinct() {
        assert_eq!(SimError::Deadlock(pm()).kind(), "deadlock");
        assert_eq!(SimError::MaxCycles(pm()).kind(), "max-cycles");
        assert_eq!(
            SimError::InvariantViolation(pm()).kind(),
            "invariant-violation"
        );
        assert_eq!(
            SimError::LivelockWatchdog(pm()).kind(),
            "livelock-watchdog"
        );
    }

    #[test]
    fn post_mortem_accessor_reaches_every_variant() {
        for err in [
            SimError::Deadlock(pm()),
            SimError::MaxCycles(pm()),
            SimError::InvariantViolation(pm()),
            SimError::LivelockWatchdog(pm()),
        ] {
            assert_eq!(err.post_mortem().cycle, 123);
        }
    }
}
