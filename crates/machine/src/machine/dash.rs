//! The DASH protocol backend: the paper's directory-based
//! invalidation protocol, extracted verbatim from the original engine.
//!
//! Everything here is requester-, home-, or owner-side DASH machinery:
//! the processor-side access path (cache lookup, intra-cluster snoop,
//! RAC miss path), the home directory decision logic with its
//! organization-specific replacement work, forwarding, and the
//! transaction-closing message handlers. The engine (`machine.rs`)
//! keeps everything protocol-agnostic: the event wheel, message
//! transport and fault injection, synchronization, telemetry, and the
//! invariant-checker plumbing.

use super::*;

/// Unit backend handle for the DASH protocol (see
/// [`protocol::CoherenceProtocol`]).
pub(crate) struct DashProtocol;

impl protocol::CoherenceProtocol for DashProtocol {
    fn kind(&self) -> crate::config::ProtocolKind {
        crate::config::ProtocolKind::Dash
    }

    fn mem_access(&self, m: &mut Machine, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        m.dash_mem_access(t, p, block, kind);
    }

    fn deliver(&self, m: &mut Machine, t: Cycle, msg: Msg) -> bool {
        m.dash_deliver(t, msg)
    }

    fn request_msg(&self, _m: &Machine, _cl: usize, block: u64, was_write: bool) -> MsgKind {
        if was_write {
            MsgKind::WriteReq { block }
        } else {
            MsgKind::ReadReq { block }
        }
    }

    fn replay(&self, m: &mut Machine, t: Cycle, home: usize, req: scd_protocol::QueuedReq) {
        m.home_request(t, home, req.requester, req.block, req.is_write);
    }

    fn live_entries(&self, node: &ClusterNode) -> usize {
        node.dir.live_entries()
    }
}

impl Machine {
    /// DASH processor-side access: cache lookup, then the miss path.
    pub(crate) fn dash_mem_access(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let hit = self.clusters[cl].caches.access(lp, block, t);
        if let Some(state) = hit.state() {
            let lat = match hit {
                HitLevel::L1(_) => tm.l1_hit,
                _ => tm.l2_hit,
            };
            if kind == MshrKind::Read {
                self.observe(cl, block);
                self.oracle_read(p, block);
                self.resume(t + lat, p);
                return;
            }
            if state == LineState::Dirty {
                self.observe(cl, block);
                // A silent rewrite of the held ownership epoch.
                let epoch = self.clusters[cl]
                    .line_version
                    .get(&block)
                    .copied()
                    .unwrap_or(0);
                self.oracle_write(p, block, epoch);
                self.resume(t + lat, p);
                return;
            }
            // Write hit on a shared line: ownership upgrade required.
        }
        self.miss_path(t + tm.l2_hit, p, block, kind);
    }

    fn miss_path(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        if self.cfg.trace_block == Some(block) {
            eprintln!(
                "[{t:>8}] proc {p} (cl {cl}): miss {kind:?}, dirty_holder={:?} holds={}",
                self.clusters[cl].caches.dirty_holder(block),
                self.clusters[cl].caches.holds(block)
            );
        }
        let tm = self.cfg.timing;
        let home = self.cfg.home_of(block);

        // Intra-cluster snoop: a peer with a copy supplies over the bus.
        if kind == MshrKind::Read {
            if let Some(q) = self.clusters[cl].caches.dirty_holder(block) {
                self.clusters[cl].caches.proc_mut(q).downgrade(block);
                self.fill(t, cl, lp, block, LineState::Shared);
                if home != cl {
                    // Keep the home directory and memory consistent: the
                    // cluster no longer holds the block dirty. Stamp the
                    // epoch being downgraded so the home can discard the
                    // notification if the cluster is re-granted ownership
                    // before it arrives.
                    let epoch = self.clusters[cl]
                        .last_owner_epoch
                        .get(&block)
                        .copied()
                        .unwrap_or(0);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: cl,
                            dst: home,
                            kind: MsgKind::SharingWriteback {
                                block,
                                requester: cl,
                                epoch,
                            },
                        },
                    );
                }
                self.observe(cl, block);
                self.oracle_read(p, block);
                self.resume(t + tm.bus_memory, p);
                return;
            }
            if self.clusters[cl].caches.holds(block) {
                // A clean peer copy satisfies the read bus-locally; the
                // directory already covers this cluster.
                self.fill(t, cl, lp, block, LineState::Shared);
                self.observe(cl, block);
                self.oracle_read(p, block);
                self.resume(t + tm.bus_memory, p);
                return;
            }
        }
        if kind == MshrKind::Write {
            if let Some(q) = self.clusters[cl].caches.dirty_holder(block) {
                if q != lp {
                    // Bus ownership transfer; the cluster remains owner.
                    self.clusters[cl].caches.proc_mut(q).invalidate(block);
                    self.fill(t, cl, lp, block, LineState::Dirty);
                    self.observe(cl, block);
                    // Same ownership epoch, new writer within the cluster.
                    let epoch = self.clusters[cl]
                        .line_version
                        .get(&block)
                        .copied()
                        .unwrap_or(0);
                    self.oracle_write(p, block, epoch);
                    self.resume(t + tm.bus_memory, p);
                    return;
                }
            }
        }

        // Remote (or local-home) transaction through the RAC.
        match self.clusters[cl].rac.start(block, kind, lp) {
            StartOutcome::IssueRequest => {
                self.trace_txn_begin(t, cl, block, kind == MshrKind::Write);
                let mk = if kind == MshrKind::Write {
                    MsgKind::WriteReq { block }
                } else {
                    MsgKind::ReadReq { block }
                };
                self.send(
                    t,
                    Msg {
                        src: cl,
                        dst: home,
                        kind: mk,
                    },
                );
            }
            StartOutcome::Merged | StartOutcome::WaitAndReissue => {}
        }
        self.block(t, p, false);
    }

    /// Delivers one DASH protocol message: coherence requests, data and
    /// ownership replies, forwards, writebacks, invalidations, and
    /// directory flushes. Returns `false` for message kinds that belong
    /// to another backend.
    pub(crate) fn dash_deliver(&mut self, t: Cycle, msg: Msg) -> bool {
        let Msg { src, dst, kind } = msg;
        match kind {
            MsgKind::ReadReq { block } => self.home_request(t, dst, src, block, false),
            MsgKind::WriteReq { block } => self.home_request(t, dst, src, block, true),
            MsgKind::Writeback { block } => self.on_writeback(t, dst, src, block),
            MsgKind::ReplacementHint { block } => {
                // Advisory: forget the sharer if the entry is precise and
                // not mid-transaction. A hint that crosses a newer
                // transaction is simply ignored — at worst the entry keeps
                // a stale (superset) pointer, which is always safe.
                if !self.clusters[dst].ser.is_busy(block) {
                    let key = self.dir_key(block);
                    if let Some(e) = self.clusters[dst].dir.lookup_mut(key, t) {
                        if !e.is_dirty() && e.is_precise() {
                            e.remove_sharer(src as NodeId);
                        }
                    }
                    self.clusters[dst].dir.release_if_empty(key);
                }
            }
            MsgKind::FwdRead {
                block,
                requester,
                epoch,
            } => self.on_forward(t, dst, src, block, requester, false, 0, epoch),
            MsgKind::FwdWrite {
                block,
                requester,
                version,
            } => self.on_forward(t, dst, src, block, requester, true, version, version - 1),
            MsgKind::SharingWriteback {
                block,
                requester,
                epoch,
            } => self.on_sharing_writeback(t, dst, src, block, requester, epoch),
            MsgKind::OwnershipTransfer { block, new_owner } => {
                self.on_ownership_transfer(t, dst, block, new_owner)
            }
            MsgKind::WritebackRace {
                block,
                requester,
                was_write,
            } => {
                self.counters.races += 1;
                if was_write {
                    self.clusters[dst].pending_write_bump.remove(&block);
                }
                let epoch = self.memory_version(dst, block);
                self.clusters[dst].ser.on_race(
                    block,
                    src,
                    epoch,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write: was_write,
                    },
                );
                let key = self.dir_key(block);
                if matches!(
                    self.clusters[dst].ser.reason(block),
                    Some(BusyReason::AwaitWriteback(_))
                ) {
                    // The race normally waits for the ex-owner's in-flight
                    // writeback. But if the recorded dirty epoch already
                    // ended by other means — an unsolicited downgrade
                    // (intra-cluster dirty sharing) landed while the
                    // forward was in flight, after which the clean line was
                    // silently evicted — no writeback is coming: the entry
                    // is no longer dirty and memory is current, so open the
                    // block immediately.
                    let still_dirty = self.clusters[dst]
                        .dir
                        .probe(key)
                        .is_some_and(|e| e.is_dirty());
                    if !still_dirty {
                        self.clusters[dst].ser.close(block);
                    }
                } else {
                    // Resolved against an *early* writeback. That writeback
                    // may have arrived before the ownership transfer that
                    // recorded `src` as owner (contention reorders the two
                    // channels), in which case its entry update was a no-op
                    // and the entry still names the evicted owner: clean it
                    // now, or the drained request would be re-forwarded to
                    // a cluster that has nothing.
                    let node = &mut self.clusters[dst];
                    if let Some(e) = node.dir.lookup_mut(key, t) {
                        if e.is_dirty() && e.owner() == Some(src as NodeId) {
                            e.clear();
                        }
                    }
                    node.dir.release_if_empty(key);
                }
                self.drain(t, dst, block);
            }
            MsgKind::ReadReply { block, version } => {
                if self.fault_active {
                    // Duplicated requests produce one reply per service;
                    // only the first finds the MSHR, the stray is dropped.
                    match self.clusters[dst].rac.try_read_reply(block) {
                        Some(mshr) => {
                            self.set_line_version(dst, block, version);
                            self.complete_read(t, dst, block, mshr);
                        }
                        None => self.faults.strays_dropped += 1,
                    }
                } else {
                    let mshr = self.clusters[dst].rac.read_reply(block);
                    self.set_line_version(dst, block, version);
                    self.complete_read(t, dst, block, mshr);
                }
            }
            MsgKind::WriteReply {
                block,
                inval_count,
                version,
            } => {
                if let Some(mshr) =
                    self.clusters[dst].rac.write_reply(block, inval_count, version)
                {
                    self.complete_write(t, dst, block, mshr);
                }
            }
            MsgKind::TransferReply { block, version } => {
                if let Some(mshr) = self.clusters[dst].rac.write_reply(block, 0, version) {
                    self.complete_write(t, dst, block, mshr);
                }
            }
            MsgKind::Inval { block, requester } => {
                let was_dirty = self.clusters[dst].caches.invalidate_all(block);
                debug_assert!(
                    !was_dirty,
                    "invalidation hit a dirty owner: block {block} at cluster {dst}                      (requester {requester}, t {t})"
                );
                // A reordered network (contention) can deliver this before
                // the data reply of an in-flight read that was serialized
                // *before* the invalidating write: the reply may satisfy
                // the waiting processors, but its line must not persist.
                self.clusters[dst].rac.poison_read(block);
                self.send(
                    t + 1,
                    Msg {
                        src: dst,
                        dst: requester,
                        kind: MsgKind::InvalAck { block },
                    },
                );
            }
            MsgKind::InvalAck { block } => {
                if self.clusters[dst].rac.has_mshr(block) {
                    if let Some(mshr) = self.clusters[dst].rac.inval_ack(block) {
                        self.complete_write(t, dst, block, mshr);
                    }
                }
                // else: fire-and-forget ack from a Dir_NB pointer eviction.
            }
            MsgKind::DirFlush {
                block,
                epoch,
                owner_flush,
            } => {
                let my_epoch = self.clusters[dst]
                    .last_owner_epoch
                    .get(&block)
                    .copied()
                    .unwrap_or(0);
                let write_mshr =
                    self.clusters[dst].rac.mshr_kind(block) == Some(MshrKind::Write);
                if epoch < my_epoch {
                    // The flush was decided against an *older* epoch of the
                    // entry than the ownership we have since completed: it
                    // is stale. Acknowledge (the home's bookkeeping needs
                    // it) but keep our current-epoch data.
                    self.send(
                        t + 1,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::DirFlushAck { block },
                        },
                    );
                } else if write_mshr
                    && (self.clusters[dst].rac.mshr_reply_received(block)
                        || (owner_flush && epoch > my_epoch))
                {
                    // The flush targets an ownership of ours that is still
                    // filling — either the grant reply arrived and acks are
                    // pending, or we are the flushed entry's recorded owner
                    // with the grant/transfer reply still in flight. Honour
                    // it once the write completes (safe: being the recorded
                    // owner means our request was already processed, so it
                    // is not queued behind this replacement).
                    self.clusters[dst].rac.defer_flush(block);
                } else {
                    // Drop any resident copy and poison a pending read, or
                    // an uncovered copy (or a reordered reply) could
                    // survive the flush.
                    self.clusters[dst].caches.invalidate_all(block);
                    self.clusters[dst].rac.poison_read(block);
                    self.send(
                        t + 1,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::DirFlushAck { block },
                        },
                    );
                }
            }
            MsgKind::DirFlushAck { block } => {
                if let Some((targets, requester, version)) =
                    self.clusters[dst].serial_chains.get_mut(&block)
                {
                    // SCI-style serial chain: acknowledge received, walk on.
                    if let Some(next) = targets.pop_front() {
                        let epoch = *version;
                        self.send(
                            t + self.cfg.timing.bus_memory,
                            Msg {
                                src: dst,
                                dst: next,
                                kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                            },
                        );
                    } else {
                        let (requester, version) = (*requester, *version);
                        self.clusters[dst].serial_chains.remove(&block);
                        self.clusters[dst].ser.close(block);
                        if requester == dst {
                            // The home cluster's own write: stay busy until
                            // its fill, as in the parallel path.
                            self.clusters[dst]
                                .ser
                                .mark_busy(block, BusyReason::AwaitHomeWrite);
                        }
                        self.send(
                            t + self.cfg.timing.bus_memory,
                            Msg {
                                src: dst,
                                dst: requester,
                                kind: MsgKind::WriteReply {
                                    block,
                                    inval_count: 0,
                                    version,
                                },
                            },
                        );
                        self.drain(t, dst, block);
                    }
                } else if self.clusters[dst].rac.replacement_pending(block)
                    && self.clusters[dst].rac.flush_ack(block)
                {
                    self.clusters[dst].ser.close(block);
                    self.drain(t, dst, block);
                }
                // (Acks from Dir_NB evictions have no pending replacement
                // and nothing waits on them.)
            }
            _ => return false,
        }
        true
    }

    // ------------------------------------------------------------------
    // Home-side protocol
    // ------------------------------------------------------------------

    pub(crate) fn home_request(&mut self, t: Cycle, home: usize, requester: usize, block: u64, is_write: bool) {
        let tm = self.cfg.timing;
        let tracing = self.cfg.trace_block == Some(block);
        if self.clusters[home].ser.is_busy(block) {
            if tracing {
                eprintln!("[{t:>8}] home {home}: queue req from {requester} (w={is_write})");
            }
            self.clusters[home].ser.queue(
                block,
                scd_protocol::QueuedReq {
                    requester,
                    block,
                    is_write,
                },
            );
            return;
        }

        self.trace_txn_phase(t, home, requester, block, Phase::HomeLookup);

        // Home bus snoop: keep/make the home cluster's own copies coherent.
        if is_write {
            // Home copies are invalidated over the bus (a dirty home copy
            // conceptually flushes to memory first).
            self.clusters[home].caches.invalidate_all(block);
        } else {
            // A dirty home copy supplies the data; it is downgraded and
            // memory is now clean.
            self.clusters[home].caches.downgrade_all(block);
        }

        let (action, replacement) = self.dir_decide(t, home, requester, block, is_write);
        if tracing {
            let d = match &action {
                DirAction::Stalled { blocker } => format!("stalled on {blocker}"),
                DirAction::SelfOwned => "self-owned park".into(),
                DirAction::Forward { owner } => format!("forward to {owner}"),
                DirAction::Supply { nb_evict } => format!("supply (nb_evict {nb_evict:?})"),
                DirAction::Grant { inval_targets } => format!("grant (invals {inval_targets:?})"),
            };
            eprintln!(
                "[{t:>8}] home {home}: req from {requester} (w={is_write}) -> {d}; entry now {:?}",
                self.clusters[home].dir.probe(self.dir_key(block)).map(|e| e.sharer_superset())
            );
        }

        if let Some(rep) = replacement {
            self.dispatch_replacement(t, home, rep);
        }

        match action {
            DirAction::Stalled { blocker } => {
                self.counters.sparse_stalls += 1;
                self.clusters[home].ser.queue(
                    blocker,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write,
                    },
                );
            }
            DirAction::SelfOwned => {
                // The requester is the recorded owner: its writeback is in
                // flight — unless it already arrived *before* the transfer
                // that recorded the requester as owner (contention can
                // reorder the two channels). In that case the dirty epoch
                // is over: clear the record and process the request afresh.
                let park_epoch = self.memory_version(home, block);
                if let Some(kind) =
                    self.clusters[home].ser.take_early(block, requester, park_epoch)
                {
                    let key = self.dir_key(block);
                    if let Some(e) = self.clusters[home].dir.lookup_mut(key, t) {
                        if e.is_dirty() && e.owner() == Some(requester as NodeId) {
                            match kind {
                                EarlyKind::Writeback => e.clear(),
                                EarlyKind::Downgrade => e.make_shared(&[requester as NodeId]),
                            }
                        }
                    }
                    self.clusters[home].dir.release_if_empty(key);
                    return self.home_request(t, home, requester, block, is_write);
                }
                if self.fault_active {
                    // Under fault injection a request from the recorded
                    // owner may be a duplicate or a reordered retry, not
                    // evidence of an in-flight writeback; parking for a
                    // writeback that never comes would deadlock. NAK it
                    // instead (as the real DASH directory does): a genuine
                    // requester retries until its writeback lands, while a
                    // stale duplicate's NACK is dropped at the RAC.
                    self.faults.nacks += 1;
                    self.send(
                        t + tm.dir_lookup,
                        Msg {
                            src: home,
                            dst: requester,
                            kind: MsgKind::Nack {
                                block,
                                was_write: is_write,
                            },
                        },
                    );
                    return;
                }
                self.counters.self_owned_parks += 1;
                self.clusters[home].ser.park_for_writeback(
                    block,
                    requester,
                    scd_protocol::QueuedReq {
                        requester,
                        block,
                        is_write,
                    },
                );
            }
            DirAction::Forward { owner } => {
                self.counters.forwards += 1;
                if is_write {
                    // Ownership transfer: zero invalidations.
                    self.inval_hist.record(0);
                    self.trace_inval(t, home, block, 0, "write");
                }
                self.clusters[home]
                    .ser
                    .mark_busy(block, BusyReason::AwaitClose);
                let kind = if is_write {
                    // The home assigns the new ownership epoch's version at
                    // forward time; the owner echoes it in its reply. The
                    // epoch being *taken over* is version - 1.
                    let version = self.bump_version(home, block);
                    self.clusters[home].pending_write_bump.insert(block);
                    MsgKind::FwdWrite {
                        block,
                        requester,
                        version,
                    }
                } else {
                    MsgKind::FwdRead {
                        block,
                        requester,
                        epoch: self.memory_version(home, block),
                    }
                };
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: owner,
                        kind,
                    },
                );
            }
            DirAction::Supply { nb_evict } => {
                if let Some(victim) = nb_evict {
                    self.counters.nb_evictions += 1;
                    // Dir_NB pointer overflow: one sharer loses its copy so
                    // the new reader can be recorded (an invalidation event
                    // of size 1, §6.1 Figure 4).
                    self.inval_hist.record(1);
                    self.trace_inval(t, home, block, 1, "nb_evict");
                    let epoch = self.memory_version(home, block);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: victim,
                            kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                        },
                    );
                }
                let version = self.memory_version(home, block);
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: requester,
                        kind: MsgKind::ReadReply { block, version },
                    },
                );
            }
            DirAction::Grant { inval_targets } => {
                self.inval_hist.record(inval_targets.len());
                self.trace_inval(t, home, block, inval_targets.len() as u32, "write");
                if !inval_targets.is_empty() {
                    self.trace_txn_phase(t, home, requester, block, Phase::Fanout);
                }
                let version = self.bump_version(home, block);
                if self.cfg.serial_invalidations && !inval_targets.is_empty() {
                    // SCI-style: walk the sharers one at a time. The block
                    // stays busy; the requester gets its ownership reply
                    // only after the chain completes.
                    let mut targets: std::collections::VecDeque<usize> =
                        inval_targets.iter().map(|n| n as usize).collect();
                    let first = targets.pop_front().expect("non-empty");
                    self.clusters[home]
                        .serial_chains
                        .insert(block, (targets, requester, version));
                    self.clusters[home]
                        .ser
                        .mark_busy(block, BusyReason::AwaitFlushAcks);
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: first,
                            kind: MsgKind::DirFlush { block, epoch: version, owner_flush: false },
                        },
                    );
                    return;
                }
                if requester == home {
                    // The entry was cleared (home ownership is bus-tracked),
                    // but the home's own write is still in flight until all
                    // acknowledgements arrive; conflicting requests must not
                    // slip in between and see an uncached block.
                    self.clusters[home]
                        .ser
                        .mark_busy(block, BusyReason::AwaitHomeWrite);
                }
                let mut members: Vec<usize> = Vec::new();
                inval_targets.for_each_member(|c| members.push(c as usize));
                if self.mutation == Some(explore::Mutation::SkipInval) {
                    // Test-only protocol bug: silently forget one sharer.
                    // The ack count is lowered to match so the write still
                    // completes — leaving a coherence violation (a stale
                    // copy outliving the new ownership epoch) rather than a
                    // deadlock, which is the class of bug the model checker
                    // exists to catch.
                    members.pop();
                }
                let n = members.len() as u32;
                for c in members {
                    self.send(
                        t + tm.bus_memory,
                        Msg {
                            src: home,
                            dst: c,
                            kind: MsgKind::Inval { block, requester },
                        },
                    );
                }
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: home,
                        dst: requester,
                        kind: MsgKind::WriteReply {
                            block,
                            inval_count: n,
                            version,
                        },
                    },
                );
            }
        }
    }

    /// Flushes a displaced directory entry's cached copies: DirFlush to
    /// every covered cluster, acks collected at the home RAC, the victim
    /// block busy until they all arrive. Used by sparse replacements and
    /// overflow wide-victim displacements alike.
    fn dispatch_replacement(&mut self, t: Cycle, home: usize, rep: ReplacementWork) {
        if rep.targets.is_empty() {
            return;
        }
        let tm = self.cfg.timing;
        self.counters.replacement_flushes += 1;
        if self.trace_active {
            self.tracer.record(
                home,
                t,
                EventKind::Replacement {
                    victim: rep.victim_key,
                    targets: rep.targets.len() as u32,
                    dirty: rep.dirty_owner.is_some(),
                },
            );
        }
        let epoch = self.memory_version(home, rep.victim_key);
        let n = rep.targets.len() as u32;
        rep.targets.for_each_member(|c| {
            let c = c as usize;
            self.send(
                t + tm.bus_memory,
                Msg {
                    src: home,
                    dst: c,
                    kind: MsgKind::DirFlush {
                        block: rep.victim_key,
                        epoch,
                        owner_flush: rep.dirty_owner == Some(c),
                    },
                },
            );
        });
        self.clusters[home].rac.start_replacement(rep.victim_key, n);
        self.clusters[home]
            .ser
            .mark_busy(rep.victim_key, BusyReason::AwaitFlushAcks);
    }

    /// Converts a displaced entry into replacement work (targets exclude
    /// the home cluster, whose copies are bus-tracked).
    fn replacement_work(&self, home: usize, victim_block: u64, victim: &scd_core::DirEntry) -> ReplacementWork {
        let mut targets = victim.sharer_superset();
        targets.remove(home as NodeId);
        ReplacementWork {
            victim_key: victim_block,
            targets,
            dirty_owner: victim.is_dirty().then(|| victim.owner()).flatten().map(|n| n as usize),
        }
    }

    /// Registers `node` as a sharer at the home, translating the store's
    /// organization-specific outcome (NB eviction, overflow displacement)
    /// into protocol actions. Returns the NB-eviction target, if any.
    fn register_sharer(
        &mut self,
        t: Cycle,
        home: usize,
        block: u64,
        node: usize,
    ) -> Option<usize> {
        let key = self.dir_key(block);
        let clusters = self.cfg.clusters as u64;
        let outcome = {
            let node_ref = &mut self.clusters[home];
            let ser = &node_ref.ser;
            node_ref
                .dir
                .record_sharer(key, node as NodeId, t, |k| {
                    ser.is_busy(k * clusters + home as u64)
                })
        };
        match outcome {
            scd_core::RecordSharer::Recorded => None,
            scd_core::RecordSharer::Evict(v) => Some(v as usize),
            scd_core::RecordSharer::Displaced { victim_key, victim } => {
                let victim_block = victim_key * clusters + home as u64;
                let rep = self.replacement_work(home, victim_block, &victim);
                self.dispatch_replacement(t, home, rep);
                None
            }
        }
    }

    /// All directory-entry mutation for one request, returning plain data.
    fn dir_decide(
        &mut self,
        t: Cycle,
        home: usize,
        requester: usize,
        block: u64,
        is_write: bool,
    ) -> (DirAction, Option<ReplacementWork>) {
        let key = self.dir_key(block);
        let clusters = self.cfg.clusters as u64;
        let patterns_active = self.patterns_active;
        let node = &mut self.clusters[home];
        let ser = &node.ser;
        let mut replacement = None;
        // Fan-out precision sample, captured as plain data while the entry
        // borrow is live and applied after it ends (the "present" check
        // needs read access to every cluster's caches).
        let mut fanout_sample: Option<(bool, scd_core::ReprKind, Option<usize>, NodeSet)> = None;
        // The pin check and the victim/blocker results translate between
        // home-local directory keys and global block numbers.
        let access = node
            .dir
            .entry_mut(key, t, |k| ser.is_busy(k * clusters + home as u64));
        let entry = match access {
            EntryAccess::Stalled { blocker } => {
                return (
                    DirAction::Stalled {
                        blocker: blocker * clusters + home as u64,
                    },
                    None,
                );
            }
            EntryAccess::Ready(e) => e,
            EntryAccess::Displaced {
                victim_key,
                victim,
                entry,
            } => {
                let mut targets = victim.sharer_superset();
                targets.remove(home as NodeId);
                replacement = Some(ReplacementWork {
                    victim_key: victim_key * clusters + home as u64,
                    targets,
                    dirty_owner: victim
                        .is_dirty()
                        .then(|| victim.owner())
                        .flatten()
                        .map(|n| n as usize),
                });
                entry
            }
        };

        let action = match entry.state() {
            DirState::Dirty => {
                let owner = entry.owner().expect("dirty entry has an owner") as usize;
                if owner == requester {
                    DirAction::SelfOwned
                } else {
                    DirAction::Forward { owner }
                }
            }
            _ => {
                if is_write {
                    let mut targets = entry.invalidation_targets(requester as NodeId);
                    targets.remove(home as NodeId);
                    if patterns_active {
                        fanout_sample = Some((
                            entry.is_precise(),
                            entry.repr_kind(),
                            entry.coarse_regions_set(),
                            targets.clone(),
                        ));
                    }
                    if requester == home {
                        // The home cluster's ownership is tracked by its bus
                        // snoop, not the directory.
                        entry.clear();
                    } else {
                        entry.make_dirty(requester as NodeId);
                    }
                    DirAction::Grant {
                        inval_targets: targets,
                    }
                } else {
                    // The sharer is recorded below, once the entry borrow
                    // ends (the organization may promote/displace).
                    DirAction::Supply { nb_evict: None }
                }
            }
        };
        let action = if let DirAction::Supply { .. } = action {
            let nb_evict = if requester != home {
                self.register_sharer(t, home, block, requester)
            } else {
                None
            };
            DirAction::Supply { nb_evict }
        } else {
            action
        };
        // Release only after any sharer registration (the entry may have
        // been empty until the new sharer was recorded).
        self.clusters[home].dir.release_if_empty(key);
        if let Some((precise, kind, regions, targets)) = fanout_sample {
            self.observe_fanout(block, precise, kind, regions, &targets);
        }
        (action, replacement)
    }

    /// Folds one write fan-out into the occupancy telemetry: how precise
    /// the entry's representation was, and how much of the invalidation
    /// superset actually held the block ("present" — the rest is
    /// imprecision waste). Only called when `patterns_active`.
    fn observe_fanout(
        &mut self,
        block: u64,
        precise: bool,
        kind: scd_core::ReprKind,
        regions: Option<usize>,
        targets: &NodeSet,
    ) {
        let mut present = 0u64;
        targets.for_each_member(|c| {
            if self.clusters[c as usize].caches.holds(block) {
                present += 1;
            }
        });
        let o = &mut self.obs;
        o.fanout_events += 1;
        if precise {
            o.fanout_precise += 1;
        }
        if kind == scd_core::ReprKind::Broadcast {
            o.fanout_broadcast += 1;
        }
        o.fanout_targets += targets.len() as u64;
        o.fanout_present += present;
        if let Some(r) = regions {
            o.coarse_events += 1;
            o.coarse_regions += r as u64;
            o.coarse_covered += targets.len() as u64;
            o.coarse_present += present;
        }
    }

    /// Schedules the next replay of a parked request, if any. Replays run
    /// as real events `dir_lookup` apart, so the directory's state
    /// mutations and message emissions stay in timestamp order (a burst of
    /// parked readers, e.g. LU's pivot column, also cannot complete in
    /// zero home time).
    pub(crate) fn drain(&mut self, t: Cycle, home: usize, block: u64) {
        if !self.clusters[home].ser.is_busy(block)
            && self.clusters[home].ser.pending_len(block) > 0
        {
            self.sched(home, t + self.cfg.timing.dir_lookup, Ev::Replay { home, block });
        }
    }

    // ------------------------------------------------------------------
    // Owner-side protocol
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_forward(
        &mut self,
        t: Cycle,
        owner: usize,
        home: usize,
        block: u64,
        requester: usize,
        is_write: bool,
        version: u64,
        addressed_epoch: u64,
    ) {
        let tm = self.cfg.timing;
        let write_mshr =
            self.clusters[owner].rac.mshr_kind(block) == Some(MshrKind::Write);
        let my_epoch = self.clusters[owner]
            .last_owner_epoch
            .get(&block)
            .copied()
            .unwrap_or(0);
        if self.cfg.trace_block == Some(block) {
            eprintln!(
                "[{t:>8}] owner {owner}: forward(w={is_write}) req={requester} holds={} write_mshr={write_mshr} addressed_epoch={addressed_epoch} my_epoch={my_epoch}",
                self.clusters[owner].caches.holds(block)
            );
        }
        debug_assert!(
            addressed_epoch >= my_epoch,
            "forward addressed to a stale epoch ({addressed_epoch} < {my_epoch})"
        );
        if addressed_epoch > my_epoch {
            // The forward addresses an ownership epoch we have not
            // completed yet: it is our pending grant, whose reply (or
            // transfer) is still in flight — possibly reordered behind the
            // forward by a contended network. Any resident copy predates
            // the grant and must not answer; service after the write
            // completes.
            debug_assert!(
                write_mshr,
                "forward for a future epoch without a pending write"
            );
            self.clusters[owner]
                .rac
                .defer_forward(block, requester, is_write, version);
        } else if self.clusters[owner].caches.holds(block) {
            // The forward addresses the epoch we completed and we still
            // hold the data (possibly downgraded): supply it directly —
            // even if a *new* request of ours is queued at the home behind
            // this very forward (servicing is what unblocks that queue).
            self.service_forward(t, owner, home, block, requester, is_write, version);
        } else {
            // No copy, no pending grant: the record is a previous ownership
            // epoch whose eviction writeback is in flight.
            debug_assert!(
                self.clusters[owner].rac.writeback_in_flight(block) || !write_mshr,
                "race branch without a writeback in flight"
            );
            // The block was evicted; its writeback is in flight to the home.
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::WritebackRace {
                        block,
                        requester,
                        was_write: is_write,
                    },
                },
            );
        }
    }

    /// The owner-side service of a forwarded request, used both when the
    /// forward finds the copy resident and when it was deferred behind the
    /// owner's own completing write.
    #[allow(clippy::too_many_arguments)]
    fn service_forward(
        &mut self,
        t: Cycle,
        owner: usize,
        home: usize,
        block: u64,
        requester: usize,
        is_write: bool,
        version: u64,
    ) {
        let tm = self.cfg.timing;
        if is_write {
            self.clusters[owner].caches.invalidate_all(block);
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: requester,
                    kind: MsgKind::TransferReply { block, version },
                },
            );
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::OwnershipTransfer {
                        block,
                        new_owner: requester,
                    },
                },
            );
        } else {
            self.clusters[owner].caches.downgrade_all(block);
            let v = if self.cfg.track_versions {
                self.clusters[owner]
                    .line_version
                    .get(&block)
                    .copied()
                    .unwrap_or(0)
            } else {
                0
            };
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: requester,
                    kind: MsgKind::ReadReply { block, version: v },
                },
            );
            let epoch = self.clusters[owner]
                .last_owner_epoch
                .get(&block)
                .copied()
                .unwrap_or(0);
            self.send(
                t + tm.l2_hit,
                Msg {
                    src: owner,
                    dst: home,
                    kind: MsgKind::SharingWriteback {
                        block,
                        requester,
                        epoch,
                    },
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Transaction-closing messages at the home
    // ------------------------------------------------------------------

    fn on_sharing_writeback(
        &mut self,
        t: Cycle,
        home: usize,
        owner: usize,
        block: u64,
        requester: usize,
        epoch: u64,
    ) {
        // A forwarded-read close carries the *requester* the owner replied
        // to; an unsolicited downgrade (intra-cluster dirty sharing) names
        // the owner itself. The distinction matters: an unsolicited SWB can
        // arrive while a forward to the same owner is still in flight, and
        // must not steal that transaction's close.
        let closing = self.clusters[home].ser.reason(block) == Some(BusyReason::AwaitClose)
            && requester != owner;
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        if closing {
            node.pending_write_bump.remove(&block);
            let mut sharers: Vec<NodeId> = Vec::with_capacity(2);
            if owner != home {
                sharers.push(owner as NodeId);
            }
            if requester != home && requester != owner {
                sharers.push(requester as NodeId);
            }
            // Register the downgraded owner and the requester one by one
            // through the store, so each organization applies its overflow
            // policy (Dir_i NB with i == 1 evicts the first registration;
            // an overflow directory may promote and displace a wide
            // victim). NB evictions are flushed like any other
            // pointer-overflow eviction.
            node.dir
                .lookup_mut(key, t)
                .expect("busy entries are pinned")
                .clear();
            let mut evicted: Vec<usize> = Vec::new();
            for &sh in &sharers {
                if let Some(v) = self.register_sharer(t, home, block, sh as usize) {
                    evicted.push(v);
                }
            }
            if self.cfg.trace_block == Some(block) {
                eprintln!(
                    "[{t:>8}] home {home}: SWB close owner={owner} req={requester}; entry {:?}; evicted {evicted:?}",
                    self.clusters[home].dir.probe(self.dir_key(block)).map(|e| e.sharer_superset())
                );
            }
            self.clusters[home].dir.release_if_empty(key);
            self.clusters[home].ser.close(block);
            let epoch = self.memory_version(home, block);
            for v in evicted {
                self.counters.nb_evictions += 1;
                self.inval_hist.record(1);
                self.trace_inval(t, home, block, 1, "swb_evict");
                self.send(
                    t + self.cfg.timing.bus_memory,
                    Msg {
                        src: home,
                        dst: v,
                        kind: MsgKind::DirFlush { block, epoch, owner_flush: false },
                    },
                );
            }
            self.drain(t, home, block);
        } else {
            // Unsolicited downgrade (intra-cluster dirty sharing): apply it
            // only if the directory still records the *same epoch* of the
            // sender's ownership — the sender may have been re-granted
            // ownership (a newer epoch) while this notification was in
            // flight, in which case it is stale. The recorded owner's
            // epoch is `cur_version`, minus one while a FwdWrite's bump is
            // pending.
            let cur = node.cur_version.get(&block).copied().unwrap_or(0);
            let recorded_epoch =
                cur - u64::from(node.pending_write_bump.contains(&block));
            let mut applied = false;
            if epoch == recorded_epoch {
                if let Some(entry) = node.dir.lookup_mut(key, t) {
                    if entry.is_dirty() && entry.owner() == Some(owner as NodeId) {
                        entry.make_shared(&[owner as NodeId]);
                        applied = true;
                    }
                }
            }
            if applied {
                // If requests were parked waiting for this owner's dirty
                // epoch to end (a self-owned park expecting a writeback),
                // the downgrade notification is exactly that evidence.
                if node.ser.reason(block) == Some(BusyReason::AwaitWriteback(owner)) {
                    node.ser.close(block);
                    self.drain(t, home, block);
                }
            } else if node.ser.is_busy(block) && epoch == cur {
                // The notification outran the transfer that will record
                // `owner` as the owner: remember the downgrade so the
                // transfer (or a self-owned park) can account for it.
                node.ser.record_early(block, owner, epoch, EarlyKind::Downgrade);
            }
        }
    }

    fn on_ownership_transfer(&mut self, t: Cycle, home: usize, block: u64, new_owner: usize) {
        assert_eq!(
            self.clusters[home].ser.reason(block),
            Some(BusyReason::AwaitClose),
            "ownership transfer must close a forwarded write"
        );
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        node.pending_write_bump.remove(&block);
        // If the new owner's eviction writeback (or downgrade notification)
        // outran this transfer, its dirty epoch is already over.
        let epoch = node.cur_version.get(&block).copied().unwrap_or(0);
        let early = node.ser.take_early(block, new_owner, epoch);
        let entry = node
            .dir
            .lookup_mut(key, t)
            .expect("busy entries are pinned");
        match (new_owner == home, early) {
            (true, _) | (false, Some(EarlyKind::Writeback)) => entry.clear(),
            (false, Some(EarlyKind::Downgrade)) => {
                entry.make_shared(&[new_owner as NodeId])
            }
            (false, None) => entry.make_dirty(new_owner as NodeId),
        }
        node.dir.release_if_empty(key);
        node.ser.close(block);
        self.drain(t, home, block);
    }

    fn on_writeback(&mut self, t: Cycle, home: usize, owner: usize, block: u64) {
        let key = self.dir_key(block);
        let node = &mut self.clusters[home];
        if let Some(entry) = node.dir.lookup_mut(key, t) {
            if entry.is_dirty() && entry.owner() == Some(owner as NodeId) {
                entry.clear();
            }
        }
        let epoch = node.cur_version.get(&block).copied().unwrap_or(0);
        node.dir.release_if_empty(key);
        if node.ser.on_writeback(block, owner, epoch) {
            self.drain(t, home, block);
        }
    }

    // ------------------------------------------------------------------
    // Requester-side completion
    // ------------------------------------------------------------------

    pub(crate) fn complete_read(&mut self, t: Cycle, cl: usize, block: u64, mshr: scd_protocol::Mshr) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        for &(lp, kind) in &mshr.waiters {
            if kind == MshrKind::Read {
                if !mshr.poisoned {
                    self.fill(t, cl, lp, block, LineState::Shared);
                }
                self.observe(cl, block);
                let g = self.global_proc(cl, lp);
                self.oracle_read(g, block);
                self.resume(t + tm.l1_hit, g);
            } else {
                // Write waiter merged behind a read: reissue for ownership.
                let g = self.global_proc(cl, lp);
                self.retry(t + tm.l1_hit, g);
            }
        }
        self.finish_flush_if_deferred(t, cl, block, mshr.flush_pending);
    }

    pub(crate) fn complete_write(&mut self, t: Cycle, cl: usize, block: u64, mshr: scd_protocol::Mshr) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        let (writer, _) = *mshr
            .waiters
            .first()
            .expect("write MSHR has its initiating processor");
        // Stale local shared copies vanish over the bus.
        self.clusters[cl].caches.invalidate_others(writer, block);
        self.fill(t, cl, writer, block, LineState::Dirty);
        self.clusters[cl]
            .last_owner_epoch
            .insert(block, mshr.version);
        self.set_line_version(cl, block, mshr.version);
        self.observe(cl, block);
        let g = self.global_proc(cl, writer);
        self.oracle_write(g, block, mshr.version);
        self.resume(t + tm.l1_hit, g);
        for &(lp, _) in &mshr.waiters[1..] {
            // Peers re-execute; they will hit the fresh copy over the bus.
            let g = self.global_proc(cl, lp);
            self.retry(t + tm.bus_memory, g);
        }
        if let Some((requester, is_write, version)) = mshr.deferred_forward {
            let home = self.cfg.home_of(block);
            self.service_forward(t, cl, home, block, requester, is_write, version);
        }
        self.finish_flush_if_deferred(t, cl, block, mshr.flush_pending);
        // A home-cluster write holds its block busy from grant to fill.
        let home = self.cfg.home_of(block);
        if home == cl
            && self.clusters[home].ser.reason(block) == Some(BusyReason::AwaitHomeWrite)
        {
            self.clusters[home].ser.close(block);
            self.drain(t, home, block);
        }
    }

    fn finish_flush_if_deferred(&mut self, t: Cycle, cl: usize, block: u64, pending: bool) {
        if pending {
            // A DirFlush crossed our transaction: honour it now.
            self.clusters[cl].caches.invalidate_all(block);
            let home = self.cfg.home_of(block);
            self.send(
                t + 1,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::DirFlushAck { block },
                },
            );
        }
    }
}
