//! Sharded execution: one machine, many cores, identical bytes.
//!
//! The 2D mesh is partitioned into contiguous cluster ranges, one per
//! worker thread. Each worker owns a full [`Machine`] whose non-owned
//! processors are inert, and the fleet advances under a **conservative
//! time window**: with `L` the minimum inter-shard message latency
//! ([`scd_noc::LatencyModel::min_remote_latency`]) and `M` the global
//! minimum pending event time, every shard may safely process all events
//! in `[M, M + L)` — any cross-shard message produced inside the window is
//! sent at some `t >= M` and arrives at `t + lat >= M + L`, i.e. never
//! inside the window that produced it (`deliver_or_export` asserts this).
//!
//! Determinism does not come from the barrier alone: every event carries a
//! canonical [`scd_sim::Stamp`] drawn from its *emitting* cluster's
//! monotone counter, and each shard's timing wheel orders same-cycle
//! events by stamp. A shard's local schedule is therefore the projection
//! of the one global `(cycle, stamp)` order onto its clusters, so stats,
//! traces, streamed documents, and BENCH baselines come out byte-identical
//! to the serial engine for any shard count (golden-tested in
//! `tests/shard.rs` and CI-gated).
//!
//! Boundary messages cross shards through bounded per-barrier exchanges:
//! workers park them in an outbox, the coordinator routes them, and the
//! destination worker merges them into its wheel in `(cycle, seq)` order
//! before the next window opens. Telemetry that spans shards (transaction
//! phase notes, interval pieces, mirror events for streaming) rides the
//! same barrier.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use scd_noc::merge_link_traffic;

use super::*;

/// The coordinator → worker message opening one window (or ending the
/// run).
enum WindowPlan {
    /// Process every local event strictly below `horizon`, after merging
    /// the routed deliveries and telemetry notes.
    Window {
        horizon: Cycle,
        inbounds: Vec<Outbound>,
        notes: Vec<TxnNote>,
    },
    /// The run is over (drained, errored, or watchdogged): apply any final
    /// notes and hand the machine back.
    Finish { notes: Vec<TxnNote> },
}

/// The worker → coordinator message closing one window.
struct WindowReport {
    /// Earliest local pending event (None when the local wheel is empty or
    /// the worker died).
    peek: Option<Cycle>,
    /// Time of the last event processed in the window just closed.
    last_pop: Option<Cycle>,
    /// Deliveries bound for clusters other shards own.
    outbounds: Vec<Outbound>,
    /// Telemetry notes bound for clusters other shards own.
    notes: Vec<TxnNote>,
    /// Closed interval windows (per-shard deltas; see [`IntervalPiece`]).
    pieces: Vec<IntervalPiece>,
    /// Freshly recorded trace events (only when a stream is attached).
    mirror: Vec<TraceEvent>,
    /// Local processors not yet Done.
    running: usize,
    /// Last local cycle at which an operation retired.
    last_progress: Cycle,
    /// The error that killed this worker's window, if any.
    error: Option<SimError>,
}

/// Runs one shard: report state, receive a window, process it, repeat.
/// After an error the worker keeps reporting (with an empty peek) so the
/// coordinator can wind the fleet down cleanly.
fn drive_worker(m: &mut Machine, rx: &Receiver<WindowPlan>, tx: &Sender<WindowReport>) {
    m.start();
    let mut last_pop = None;
    let mut error: Option<SimError> = None;
    loop {
        let report = WindowReport {
            peek: if error.is_some() {
                None
            } else {
                m.queue.peek_time()
            },
            last_pop: last_pop.take(),
            outbounds: std::mem::take(&mut m.outbox),
            notes: std::mem::take(&mut m.note_outbox),
            pieces: std::mem::take(&mut m.interval_pieces),
            mirror: m.tracer.take_mirror(),
            running: m.running,
            last_progress: m.last_progress,
            error: error.take(),
        };
        if tx.send(report).is_err() {
            return; // coordinator is gone
        }
        match rx.recv() {
            Ok(WindowPlan::Window {
                horizon,
                inbounds,
                notes,
            }) => {
                for ob in inbounds {
                    m.import_delivery(ob);
                }
                for n in notes {
                    m.apply_note(n);
                }
                match m.run_window(horizon) {
                    Ok(l) => last_pop = l,
                    Err(e) => error = Some(e),
                }
            }
            Ok(WindowPlan::Finish { notes }) => {
                for n in notes {
                    m.apply_note(n);
                }
                return;
            }
            Err(_) => return,
        }
    }
}

/// One interval boundary being summed across shards.
struct BoundaryAcc {
    snap: IntervalSnapshot,
    attrib: [scd_trace::ClassCounters; AttribClass::ALL.len()],
    links: HashMap<(usize, usize), u64>,
    contribs: usize,
}

/// The coordinator's streaming state: the single sink every shard's
/// mirror events funnel into, reproducing the solo machine's emission
/// byte-for-byte (same watermark rule, same renumbering).
struct StreamMerge {
    sink: Box<dyn scd_trace::TraceSink>,
    pending: std::collections::BinaryHeap<PendingEvent>,
    emitted: u64,
}

impl StreamMerge {
    fn flush_below(&mut self, watermark: Cycle) {
        while let Some(top) = self.pending.peek() {
            if top.0.cycle >= watermark {
                break;
            }
            let mut ev = self.pending.pop().expect("peeked above").0;
            self.emitted += 1;
            ev.seq = self.emitted;
            self.sink.emit(&ev.to_json().to_string());
        }
    }
}

/// How the coordinator loop ended.
enum RunEnd {
    /// Every queue drained and nothing was in flight.
    Drained,
    /// A worker's window died; the error already names the failure.
    WorkerError { shard: usize, error: SimError },
    /// No shard retired an operation for a full watchdog span.
    Watchdog {
        shard: usize,
        at: Cycle,
        detail: String,
    },
}

/// A [`Machine`] split across worker threads under conservative
/// time-window synchronization.
///
/// Construct with [`ShardedMachine::new`], optionally attach a stream,
/// then [`try_run`](ShardedMachine::try_run). With `shards == 1` every
/// call delegates to the solo engine, so the sharded front-end is a strict
/// superset of the serial one. For `shards > 1` the run's outputs — stats,
/// metrics, traces, streams — are byte-identical to `shards == 1`.
pub struct ShardedMachine {
    /// Per-shard machines (workers borrow them during a run).
    machines: Vec<Machine>,
    /// `(first cluster, cluster count)` per shard.
    parts: Vec<(usize, usize)>,
    /// The conservative window width.
    lookahead: Cycle,
    /// Copied config the coordinator needs while workers hold the
    /// machines.
    clusters: usize,
    watchdog_cycles: Cycle,
    /// Whether traffic attribution is live (drives `attrib_delta`
    /// streaming).
    attrib_on: bool,
    /// The interval period (0 = no interval records).
    interval: Cycle,
    /// The next interval boundary the stream owes a record for. The
    /// stream must never emit an event at or past this cycle before the
    /// boundary's record: boundaries are deterministic multiples of the
    /// period, so the cap is known before any shard ships a piece.
    next_due: Cycle,
    /// Pending stream attachment (coordinator-owned for `shards > 1`).
    stream: Option<StreamMerge>,
    /// Merged metrics registry, built when the run completes.
    metrics: MetricsRegistry,
    /// Merged finish time (max over shards).
    finish_time: Cycle,
    /// Interval boundaries still being accumulated.
    boundaries: BTreeMap<Cycle, BoundaryAcc>,
    /// Summed interval snapshots, in boundary order.
    merged_intervals: Vec<IntervalSnapshot>,
    /// Highest event time processed anywhere (the serial run's clock
    /// high-water mark).
    t_so_far: Cycle,
}

impl ShardedMachine {
    /// Partitions `cfg.clusters` across `shards` contiguous ranges and
    /// builds one worker machine per range. Programs are distributed by
    /// [`ThreadProgram::fork`] — each shard runs its owned processors'
    /// programs; the rest stay inert.
    ///
    /// Fails (with a human-readable reason) when the configuration cannot
    /// be sharded deterministically: more shards than clusters, a latency
    /// model with zero lookahead, link contention (a single global
    /// resource), or the patterns observatory (it reads remote cache state
    /// at home-processing time).
    pub fn new(
        cfg: MachineConfig,
        programs: Vec<Box<dyn ThreadProgram>>,
        shards: usize,
    ) -> Result<ShardedMachine, String> {
        if shards == 0 {
            return Err("shard count must be at least 1".into());
        }
        if shards > cfg.clusters {
            return Err(format!(
                "{} shards exceed {} clusters (each shard needs at least one cluster)",
                shards, cfg.clusters
            ));
        }
        assert_eq!(
            programs.len(),
            cfg.clusters * cfg.procs_per_cluster,
            "one program per processor"
        );
        let lookahead = cfg.latency.min_remote_latency();
        if shards > 1 {
            if lookahead == 0 {
                return Err(
                    "latency model has zero minimum remote latency: no conservative \
                     lookahead exists, run with --shards 1"
                        .into(),
                );
            }
            if cfg.link_occupancy.is_some() {
                return Err(
                    "link contention models a single global resource and cannot be \
                     sharded; run with --shards 1"
                        .into(),
                );
            }
            if cfg.trace.as_ref().is_some_and(|t| t.patterns) {
                return Err(
                    "the patterns observatory samples remote cache state and cannot \
                     be sharded; run with --shards 1"
                        .into(),
                );
            }
        }
        let parts: Vec<(usize, usize)> = (0..shards)
            .map(|s| {
                let base = s * cfg.clusters / shards;
                let end = (s + 1) * cfg.clusters / shards;
                (base, end - base)
            })
            .collect();
        let machines: Vec<Machine> = parts
            .iter()
            .map(|&(base, count)| {
                let progs: Vec<Box<dyn ThreadProgram>> =
                    programs.iter().map(|p| p.fork()).collect();
                Machine::new_shard(cfg.clone(), progs, base, count)
            })
            .collect();
        let attrib_on = machines[0].attrib_active;
        let interval = if machines[0].trace_active {
            machines[0].trace_cfg.interval
        } else {
            0
        };
        Ok(ShardedMachine {
            machines,
            parts,
            lookahead,
            clusters: cfg.clusters,
            watchdog_cycles: cfg.watchdog_cycles,
            attrib_on,
            interval,
            next_due: interval,
            stream: None,
            metrics: MetricsRegistry::new(),
            finish_time: 0,
            boundaries: BTreeMap::new(),
            merged_intervals: Vec::new(),
            t_so_far: 0,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.machines.len()
    }

    /// The conservative window width (minimum inter-shard latency).
    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }

    /// The shard owning `cluster`.
    fn owner_of(&self, cluster: usize) -> usize {
        self.parts
            .iter()
            .position(|&(base, count)| cluster.wrapping_sub(base) < count)
            .expect("every cluster has an owner")
    }

    /// Attaches `sink`, emitting the optional `run_meta` record
    /// immediately — the same contract as [`Machine::attach_stream`]. For
    /// a sharded run the coordinator owns the sink and merges every
    /// worker's mirror events through one watermark heap.
    pub fn attach_stream(&mut self, mut sink: Box<dyn scd_trace::TraceSink>, run: Option<Json>) {
        if self.machines.len() == 1 {
            self.machines[0].attach_stream(sink, run);
            return;
        }
        if let Some(run) = run {
            sink.emit(&scd_trace::run_meta_record(&run).to_string());
            sink.flush();
        }
        for m in &mut self.machines {
            m.tracer.set_mirror(true);
        }
        self.stream = Some(StreamMerge {
            sink,
            pending: std::collections::BinaryHeap::new(),
            emitted: 0,
        });
    }

    /// Runs the partitioned machine to completion. Semantics mirror
    /// [`Machine::try_run`]; failure post-mortems name the stalled shard.
    pub fn try_run(&mut self) -> Result<RunStats, SimError> {
        if self.machines.len() == 1 {
            let stats = self.machines[0].try_run()?;
            self.finish_time = stats.cycles;
            return Ok(stats);
        }
        let n = self.machines.len();
        let machines = std::mem::take(&mut self.machines);

        let mut plan_txs: Vec<Sender<WindowPlan>> = Vec::with_capacity(n);
        let mut plan_rxs: Vec<Receiver<WindowPlan>> = Vec::with_capacity(n);
        let mut report_txs: Vec<Sender<WindowReport>> = Vec::with_capacity(n);
        let mut report_rxs: Vec<Receiver<WindowReport>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (ptx, prx) = channel();
            let (rtx, rrx) = channel();
            plan_txs.push(ptx);
            plan_rxs.push(prx);
            report_txs.push(rtx);
            report_rxs.push(rrx);
        }

        let (end, machines) = std::thread::scope(|scope| {
            let handles: Vec<_> = machines
                .into_iter()
                .zip(plan_rxs)
                .zip(report_txs)
                .map(|((mut m, prx), rtx)| {
                    scope.spawn(move || {
                        drive_worker(&mut m, &prx, &rtx);
                        m
                    })
                })
                .collect();
            let end = self.coordinate(&plan_txs, &report_rxs);
            drop(plan_txs);
            let machines: Vec<Machine> = handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect();
            (end, machines)
        });
        self.machines = machines;
        self.finish(end)
    }

    /// Panicking wrapper around [`ShardedMachine::try_run`], mirroring
    /// [`Machine::run`].
    pub fn run(&mut self) -> RunStats {
        match self.try_run() {
            Ok(stats) => stats,
            Err(e) => panic!("{e}"),
        }
    }

    /// The barrier loop: gather reports in shard order, route boundary
    /// traffic, pick the next window `[M, M + L)`, repeat until every
    /// wheel drains (or something dies).
    fn coordinate(
        &mut self,
        plans: &[Sender<WindowPlan>],
        reports: &[Receiver<WindowReport>],
    ) -> RunEnd {
        let n = plans.len();
        let watchdog = self.watchdog_cycles;
        loop {
            let mut peeks: Vec<Option<Cycle>> = Vec::with_capacity(n);
            let mut outbounds: Vec<Outbound> = Vec::new();
            let mut notes: Vec<TxnNote> = Vec::new();
            let mut running_total = 0usize;
            let mut progress: Vec<Cycle> = Vec::with_capacity(n);
            let mut runnings: Vec<usize> = Vec::with_capacity(n);
            let mut error: Option<(usize, SimError)> = None;
            for (s, rx) in reports.iter().enumerate() {
                let Ok(r) = rx.recv() else {
                    // A worker can only hang up after a panic in scope;
                    // propagate as a join panic.
                    panic!("shard {s} worker hung up mid-run");
                };
                if let Some(t) = r.last_pop {
                    self.t_so_far = self.t_so_far.max(t);
                }
                peeks.push(r.peek);
                outbounds.extend(r.outbounds);
                notes.extend(r.notes);
                running_total += r.running;
                runnings.push(r.running);
                progress.push(r.last_progress);
                for p in r.pieces {
                    self.ingest_piece(p, n);
                }
                if let Some(stream) = self.stream.as_mut() {
                    for ev in r.mirror {
                        stream.pending.push(PendingEvent(ev));
                    }
                }
                if let Some(e) = r.error {
                    error.get_or_insert((s, e));
                }
            }
            if let Some((shard, error)) = error {
                finish_all(plans);
                return RunEnd::WorkerError { shard, error };
            }

            // Next window start: the earliest pending event anywhere,
            // including deliveries still crossing shards.
            let m_next = peeks
                .iter()
                .flatten()
                .copied()
                .chain(outbounds.iter().map(|ob| ob.deliver_at))
                .min();

            self.emit_ready_boundaries(m_next, n);

            let Some(m_next) = m_next else {
                // Fully drained: ship any leftover telemetry notes with the
                // shutdown so requester-side timelines stay complete.
                let mut note_bins = self.route_notes(notes);
                for (s, tx) in plans.iter().enumerate() {
                    let _ = tx.send(WindowPlan::Finish {
                        notes: std::mem::take(&mut note_bins[s]),
                    });
                }
                return RunEnd::Drained;
            };

            // The livelock watchdog is a *global* property (one shard's
            // procs legitimately idle while a remote shard works), so the
            // per-event check is disabled in sharded workers and the
            // coordinator evaluates it at barrier granularity instead.
            // `max_cycles` stays worker-side: the shard that pops the
            // offending event reports the failure with a full post-mortem.
            let global_progress = progress.iter().copied().max().unwrap_or(0);
            if watchdog > 0
                && running_total > 0
                && m_next.saturating_sub(global_progress) > watchdog
            {
                // Name the laggard: the stalled shard is the one whose own
                // processors have gone longest without retiring.
                let mut shard = 0;
                let mut best = Cycle::MAX;
                for s in 0..n {
                    if runnings[s] > 0 && progress[s] < best {
                        best = progress[s];
                        shard = s;
                    }
                }
                let detail = format!(
                    "no operation retired on any shard since cycle {global_progress} \
                     (watchdog window {watchdog}); shard {shard} (clusters \
                     {}..{}) stalled since cycle {}",
                    self.parts[shard].0,
                    self.parts[shard].0 + self.parts[shard].1,
                    progress[shard],
                );
                finish_all(plans);
                return RunEnd::Watchdog {
                    shard,
                    at: m_next,
                    detail,
                };
            }

            let horizon = m_next + self.lookahead;
            let mut delivery_bins: Vec<Vec<Outbound>> = vec![Vec::new(); n];
            for ob in outbounds {
                delivery_bins[self.owner_of(ob.msg.dst)].push(ob);
            }
            let mut note_bins = self.route_notes(notes);
            for (s, tx) in plans.iter().enumerate() {
                let plan = WindowPlan::Window {
                    horizon,
                    inbounds: std::mem::take(&mut delivery_bins[s]),
                    notes: std::mem::take(&mut note_bins[s]),
                };
                if tx.send(plan).is_err() {
                    panic!("shard {s} worker hung up mid-run");
                }
            }
        }
    }

    /// Routes telemetry notes to their target shards.
    fn route_notes(&self, notes: Vec<TxnNote>) -> Vec<Vec<TxnNote>> {
        let mut bins: Vec<Vec<TxnNote>> = vec![Vec::new(); self.parts.len()];
        for note in notes {
            let target = match &note {
                TxnNote::Begin { block, .. } => (*block as usize) % self.clusters,
                TxnNote::Phase { requester, .. } => *requester,
            };
            bins[self.owner_of(target)].push(note);
        }
        bins
    }

    /// Folds one shard's interval piece into its boundary accumulator.
    fn ingest_piece(&mut self, piece: IntervalPiece, shards: usize) {
        let acc = self
            .boundaries
            .entry(piece.snap.end)
            .or_insert_with(|| BoundaryAcc {
                snap: IntervalSnapshot {
                    start: piece.snap.start,
                    end: piece.snap.end,
                    ..Default::default()
                },
                attrib: Default::default(),
                links: HashMap::new(),
                contribs: 0,
            });
        acc.snap.messages += piece.snap.messages;
        acc.snap.retries += piece.snap.retries;
        acc.snap.nacks += piece.snap.nacks;
        acc.snap.occupancy += piece.snap.occupancy;
        acc.snap.ops_retired += piece.snap.ops_retired;
        for (a, b) in acc.attrib.iter_mut().zip(piece.attrib_delta.iter()) {
            *a = a.plus(*b);
        }
        for (link, d) in piece.link_delta {
            *acc.links.entry(link).or_insert(0) += d;
        }
        acc.contribs += 1;
        debug_assert!(acc.contribs <= shards, "a shard closed a boundary twice");
    }

    /// Emits every fully-summed boundary the run has reached — exactly the
    /// windows the solo engine would have closed by now (a boundary only
    /// becomes a record once some event at or past it was processed).
    fn emit_ready_boundaries(&mut self, m_next: Option<Cycle>, shards: usize) {
        while let Some(entry) = self.boundaries.first_entry() {
            if *entry.key() > self.t_so_far {
                break;
            }
            let acc = entry.remove();
            debug_assert_eq!(acc.contribs, shards, "boundary missing a shard's piece");
            self.next_due = acc.snap.end + self.interval;
            self.merged_intervals.push(acc.snap);
            if let Some(stream) = self.stream.as_mut() {
                stream.flush_below(acc.snap.end);
                let mut records = vec![scd_trace::interval_record(&acc.snap).to_string()];
                if self.attrib_on {
                    let classes: Vec<(&'static str, Json)> = AttribClass::ALL
                        .iter()
                        .enumerate()
                        .filter_map(|(i, c)| {
                            // Mirror the solo emitter: protocol-specific
                            // classes are omitted when idle this window.
                            if c.optional() && acc.attrib[i].messages == 0 {
                                return None;
                            }
                            Some((c.label(), acc.attrib[i].to_json()))
                        })
                        .collect();
                    const TOP_LINKS: usize = 32;
                    let mut deltas: Vec<(usize, usize, u64)> = acc
                        .links
                        .into_iter()
                        .filter(|&(_, d)| d > 0)
                        .map(|((src, dst), d)| (src, dst, d))
                        .collect();
                    deltas.sort_by(|a, b| b.2.cmp(&a.2).then((a.0, a.1).cmp(&(b.0, b.1))));
                    deltas.truncate(TOP_LINKS);
                    deltas.sort_by_key(|&(src, dst, _)| (src, dst));
                    records.push(
                        scd_trace::attrib_delta_record(
                            acc.snap.start,
                            acc.snap.end,
                            &classes,
                            &deltas,
                        )
                        .to_string(),
                    );
                }
                for r in &records {
                    stream.sink.emit(r);
                }
                stream.sink.flush();
            }
        }
        if let Some(stream) = self.stream.as_mut() {
            // Safe watermark: nothing recorded from here on sorts below the
            // next pending event time, and no event at or past the next
            // *due* interval boundary may flush before that boundary's
            // record. `next_due` — not the accumulator map — is the cap:
            // boundaries are deterministic multiples of the period, so the
            // record for `next_due` is owed even before any shard has
            // shipped a piece for it (trace events can carry cycles past
            // the window that recorded them).
            let next_due = if self.interval > 0 {
                self.next_due
            } else {
                Cycle::MAX
            };
            let cap = m_next.unwrap_or(Cycle::MAX).min(next_due);
            stream.flush_below(cap);
        }
    }

    /// Post-run: surface errors (naming the shard), replicate the solo
    /// engine's finalize checks across the fleet, close the merged stream,
    /// and merge the statistics.
    fn finish(&mut self, end: RunEnd) -> Result<RunStats, SimError> {
        // Note trailing telemetry: mirrors shipped with final reports were
        // ingested; tracers keep recorded/dropped totals.
        let recorded: u64 = self.machines.iter().map(|m| m.tracer.recorded()).sum();
        let dropped: u64 = self.machines.iter().map(|m| m.tracer.dropped()).sum();
        self.finish_time = self.machines.iter().map(|m| m.finish_time).max().unwrap_or(0);
        let close_cycles = if self.finish_time > 0 {
            self.finish_time
        } else {
            self.machines.iter().map(|m| m.queue.now()).max().unwrap_or(0)
        };

        let result: Result<(), SimError> = (|| {
            match end {
                RunEnd::WorkerError { shard, error } => {
                    return Err(self.name_shard(shard, error));
                }
                RunEnd::Watchdog { shard, at, detail } => {
                    let pm = self.machines[shard].post_mortem(at, detail);
                    return Err(SimError::LivelockWatchdog(pm));
                }
                RunEnd::Drained => {}
            }
            for (s, m) in self.machines.iter().enumerate() {
                if m.running != 0 {
                    let detail = format!(
                        "{} processors blocked with an empty event queue",
                        m.running
                    );
                    let pm = m.post_mortem(m.queue.now(), detail);
                    return Err(self.name_shard(s, SimError::Deadlock(pm)));
                }
                if !m.arena.is_empty() {
                    let detail = format!(
                        "{} message(s) still parked in the arena after the event \
                         queue drained",
                        m.arena.live()
                    );
                    let pm = m.post_mortem(m.queue.now(), detail);
                    return Err(self.name_shard(s, SimError::InvariantViolation(pm)));
                }
            }
            if self.machines[0].cfg.check_invariants {
                if let Err(e) = self.verify_quiescent_merged() {
                    let shard = e.cluster.map(|c| self.owner_of(c)).unwrap_or(0);
                    let pm = self.machines[shard]
                        .post_mortem(self.machines[shard].queue.now(), e.to_string());
                    return Err(self.name_shard(shard, SimError::InvariantViolation(pm)));
                }
            }
            Ok(())
        })();

        // Close the stream whether the run succeeded or not — a live
        // consumer gets the history up to the death plus an honest
        // run_end, exactly like the solo engine.
        if let Some(mut stream) = self.stream.take() {
            stream.flush_below(Cycle::MAX);
            stream
                .sink
                .emit(&scd_trace::run_end_record(close_cycles, recorded, dropped).to_string());
            stream.sink.flush();
            for m in &mut self.machines {
                m.tracer.set_mirror(false);
            }
        }
        result?;

        // Merge metrics: order-independent histogram sums plus the
        // boundary-ordered interval series the coordinator accumulated.
        let mut metrics = MetricsRegistry::new();
        for m in &self.machines {
            metrics.merge(&m.metrics);
        }
        metrics.intervals = std::mem::take(&mut self.merged_intervals);
        self.boundaries.clear();
        self.metrics = metrics;

        Ok(self.merge_stats())
    }

    /// Prefixes a shard identity into an error's post-mortem detail.
    fn name_shard(&self, shard: usize, error: SimError) -> SimError {
        let (base, count) = self.parts[shard];
        let tag = format!("shard {shard} (clusters {}..{}): ", base, base + count);
        let prefix = |mut pm: Box<PostMortem>| {
            pm.detail = format!("{tag}{}", pm.detail);
            pm
        };
        match error {
            SimError::Deadlock(pm) => SimError::Deadlock(prefix(pm)),
            SimError::MaxCycles(pm) => SimError::MaxCycles(prefix(pm)),
            SimError::InvariantViolation(pm) => SimError::InvariantViolation(prefix(pm)),
            SimError::LivelockWatchdog(pm) => SimError::LivelockWatchdog(prefix(pm)),
        }
    }

    /// The quiescent coherence check over the whole fleet: each cluster's
    /// view comes from its owning shard, so the machine-wide invariants
    /// (single writer, owner tracking, superset coverage) are verified
    /// across shard boundaries.
    fn verify_quiescent_merged(&self) -> Result<(), crate::checker::Violation> {
        let cfg = &self.machines[0].cfg;
        let views: Vec<ClusterView<'_>> = (0..cfg.clusters)
            .map(|c| {
                let owner = &self.machines[self.owner_of(c)];
                let node = &owner.clusters[c];
                ClusterView {
                    resident: node.caches.cluster_resident(),
                    node,
                }
            })
            .collect();
        crate::checker::verify_views(cfg, &views)
    }

    /// Sums per-shard [`RunStats`] into the machine-wide figures. Every
    /// counter is owned by exactly one shard (procs, clusters, and message
    /// sources partition), so plain sums — plus max for the clock-like
    /// fields — reproduce the serial run exactly.
    fn merge_stats(&self) -> RunStats {
        let mut parts = self.machines.iter().map(|m| m.collect());
        let mut total = parts.next().expect("at least one shard");
        for p in parts {
            total.cycles = total.cycles.max(p.cycles);
            total.traffic.merge(&p.traffic);
            total.invalidations.merge(&p.invalidations);
            total.shared_reads += p.shared_reads;
            total.shared_writes += p.shared_writes;
            total.sync_ops += p.sync_ops;
            total.network.merge(&p.network);
            total.sparse = merge_opt(total.sparse, p.sparse, |a, b| scd_core::SparseStats {
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                fills: a.fills + b.fills,
                replacements: a.replacements + b.replacements,
            });
            total.overflow = merge_opt(total.overflow, p.overflow, |a, b| {
                scd_core::OverflowStats {
                    promotions: a.promotions + b.promotions,
                    demotions: a.demotions + b.demotions,
                    displacements: a.displacements + b.displacements,
                    fallback_evictions: a.fallback_evictions + b.fallback_evictions,
                }
            });
            total.l2_misses += p.l2_misses;
            total.lock_metrics.0 += p.lock_metrics.0;
            total.lock_metrics.1 += p.lock_metrics.1;
            total.queue_metrics.0 = total.queue_metrics.0.max(p.queue_metrics.0);
            total.queue_metrics.1 += p.queue_metrics.1;
            total.live_dir_entries += p.live_dir_entries;
            total.protocol.forwards += p.protocol.forwards;
            total.protocol.races += p.protocol.races;
            total.protocol.self_owned_parks += p.protocol.self_owned_parks;
            total.protocol.nb_evictions += p.protocol.nb_evictions;
            total.protocol.replacement_flushes += p.protocol.replacement_flushes;
            total.protocol.sparse_stalls += p.protocol.sparse_stalls;
            total.faults.nacks += p.faults.nacks;
            total.faults.retries += p.faults.retries;
            total.faults.duplicates += p.faults.duplicates;
            total.faults.strays_dropped += p.faults.strays_dropped;
            total.faults.delay_spikes += p.faults.delay_spikes;
            total.faults.reorders += p.faults.reorders;
            total.tardis = merge_opt(total.tardis, p.tardis, |a, b| {
                crate::stats::TardisCounters {
                    lease_fills: a.lease_fills + b.lease_fills,
                    renewals: a.renewals + b.renewals,
                    renew_refetches: a.renew_refetches + b.renew_refetches,
                    write_throughs: a.write_throughs + b.write_throughs,
                }
            });
            total.dls = merge_opt(total.dls, p.dls, |a, b| crate::stats::DlsCounters {
                llc_fills: a.llc_fills + b.llc_fills,
                llc_writes: a.llc_writes + b.llc_writes,
            });
            total.versions_assigned += p.versions_assigned;
            total.events_delivered += p.events_delivered;
            for (a, b) in total.stalls.mem_stall.iter_mut().zip(&p.stalls.mem_stall) {
                *a += b;
            }
            for (a, b) in total.stalls.sync_stall.iter_mut().zip(&p.stalls.sync_stall) {
                *a += b;
            }
            for (a, b) in total.stalls.finish.iter_mut().zip(&p.stalls.finish) {
                *a += b;
            }
        }
        total
    }

    /// The merged metrics registry (delegates to the solo machine for one
    /// shard).
    pub fn metrics(&self) -> &MetricsRegistry {
        if self.machines.len() == 1 {
            self.machines[0].metrics()
        } else {
            &self.metrics
        }
    }

    /// The merged `scd-attrib/v1` document — see
    /// [`Machine::attribution_json`]. Byte-identical to the solo run: each
    /// message is attributed by exactly one shard and link counters sum.
    pub fn attribution_json(&self, elapsed: Cycle) -> Option<Json> {
        if self.machines.len() == 1 {
            return self.machines[0].attribution_json(elapsed);
        }
        let first = &self.machines[0];
        if !first.attrib_active {
            return None;
        }
        let mut attrib = first.attrib.clone();
        for m in &self.machines[1..] {
            attrib.merge(&m.attrib);
        }
        let mut j = attrib.to_json();
        let horizon = elapsed.max(1) as f64;
        const TOP_LINKS: usize = 16;
        let all = merge_link_traffic(self.machines.iter().map(|m| m.network.link_traffic()));
        let links: Vec<Json> = all
            .iter()
            .take(TOP_LINKS)
            .map(|((from, to), c)| {
                Json::obj()
                    .with("from", Json::U64(*from as u64))
                    .with("to", Json::U64(*to as u64))
                    .with("messages", Json::U64(c.messages))
                    .with("flits", Json::U64(c.flits))
                    .with("occupancy", Json::F64(c.flits as f64 / horizon))
            })
            .collect();
        j.set(
            "links",
            Json::obj()
                .with("tracked", Json::U64(all.len() as u64))
                .with("busiest", Json::Arr(links)),
        );
        let mut live = 0usize;
        let mut sparse_sum: Option<scd_core::SparseStats> = None;
        for (s, m) in self.machines.iter().enumerate() {
            let (base, count) = self.parts[s];
            for c in &m.clusters[base..base + count] {
                live += c.dir.live_entries();
                if let Some(st) = c.dir.sparse_stats() {
                    let sum = sparse_sum.get_or_insert_with(Default::default);
                    sum.hits += st.hits;
                    sum.misses += st.misses;
                    sum.fills += st.fills;
                    sum.replacements += st.replacements;
                }
            }
        }
        if let Some(st) = sparse_sum {
            let cfg = &first.cfg;
            let capacity = match &cfg.organization {
                scd_core::Organization::Sparse { entries, .. } => *entries * cfg.clusters,
                _ => 0,
            };
            let mut sp = Json::obj()
                .with("capacity", Json::U64(capacity as u64))
                .with("live", Json::U64(live as u64));
            if capacity > 0 {
                sp.set("occupancy", Json::F64(live as f64 / capacity as f64));
            }
            sp.set("replacements", Json::U64(st.replacements));
            sp.set(
                "replacements_per_kcycle",
                Json::F64(st.replacements as f64 * 1000.0 / horizon),
            );
            j.set("sparse", sp);
        }
        Some(j)
    }

    /// The fleet-wide value-oracle report — see
    /// [`Machine::value_oracle_report`]. Deferred loads resolve against
    /// the union of every shard's write log.
    pub fn value_oracle_report(&self) -> Option<super::oracle::ValueOracleReport> {
        if self.machines.len() == 1 {
            return self.machines[0].value_oracle_report();
        }
        if !self.machines[0].oracle.on {
            return None;
        }
        let mut merged = self.machines[0].oracle.clone();
        for m in &self.machines[1..] {
            merged.absorb(&m.oracle);
        }
        Some(merged.report())
    }

    /// All retained trace events across shards, merged into the canonical
    /// `(cycle, cluster, seq)` order and renumbered — identical to the
    /// solo machine's [`Machine::trace_events`].
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        Tracer::merged_from(self.machines.iter().map(|m| &m.tracer))
    }

    /// Events recorded / evicted across all shards.
    pub fn trace_counts(&self) -> (u64, u64) {
        let recorded = self.machines.iter().map(|m| m.tracer.recorded()).sum();
        let dropped = self.machines.iter().map(|m| m.tracer.dropped()).sum();
        (recorded, dropped)
    }

    /// The `trace` section of the stats document — see
    /// [`Machine::trace_json`].
    pub fn trace_json(&self) -> Option<Json> {
        self.machines[0].trace_active.then(|| {
            let (recorded, dropped) = self.trace_counts();
            Json::obj()
                .with("recorded", Json::U64(recorded))
                .with("dropped_events", Json::U64(dropped))
        })
    }

    /// The `patterns` section — always `None` for `shards > 1` (the
    /// observatory is rejected at construction); delegates for one shard.
    pub fn occupancy_json(&self) -> Option<Json> {
        if self.machines.len() == 1 {
            self.machines[0].occupancy_json()
        } else {
            None
        }
    }
}

/// Sends `Finish` (with no notes) to every worker.
fn finish_all(plans: &[Sender<WindowPlan>]) {
    for tx in plans {
        let _ = tx.send(WindowPlan::Finish { notes: Vec::new() });
    }
}

/// Merges two optional stat blocks with `f`, keeping either side alone.
fn merge_opt<T>(a: Option<T>, b: Option<T>, f: impl FnOnce(&T, &T) -> T) -> Option<T> {
    match (a, b) {
        (Some(a), Some(b)) => Some(f(&a, &b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}
