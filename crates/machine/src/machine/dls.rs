//! The DLS protocol backend: a directoryless shared LLC.
//!
//! DLS keeps **no directory state at all** — the zero-memory-overhead
//! endpoint of the paper's memory/traffic trade-off. Each block's home
//! cluster owns the only globally visible copy (its LLC slice plus
//! memory); remote clusters never install a line. Every remote miss
//! round-trips to the home: reads are answered with an [`MsgKind::LlcFill`]
//! data reply that is consumed *without caching* (the next read misses
//! again), and writes update the home slice and return a header-only
//! [`MsgKind::LlcWriteAck`]. Coherence is trivial — there is exactly one
//! copy to keep coherent — so invalidation traffic is zero by
//! construction and all the cost shows up as fill traffic and latency.
//!
//! Home-*local* accesses are delegated wholesale to the DASH machinery:
//! with no remote sharers ever registered, the home's directory entry
//! for its own blocks is always empty, and the DASH code path
//! degenerates exactly to "hit the local hierarchy, else memory" with
//! zero-invalidation grants. That reuse keeps the home's intra-cluster
//! behavior (bus snoops, dirty evictions, write upgrades) byte-for-byte
//! identical to DASH's while the directory stays provably empty (the
//! checker asserts it).
//!
//! The one ordering hazard is a home-cluster write in flight (granted
//! but not yet filled) racing a remote request for the same block:
//! remote requests arriving in that window queue on the home serializer
//! exactly like DASH requests and replay when the write's fill closes
//! the window.

use super::*;
use crate::config::ProtocolKind;

/// Unit backend handle for the directoryless-shared-LLC protocol (see
/// [`protocol::CoherenceProtocol`]).
pub(crate) struct DlsProtocol;

impl protocol::CoherenceProtocol for DlsProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Dls
    }

    fn mem_access(&self, m: &mut Machine, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let cl = m.cluster_of(p);
        if m.cfg.home_of(block) == cl {
            // Home-local: the DASH path, which degenerates to plain
            // hierarchy-plus-memory when the directory never holds an
            // entry (no remote sharer is ever registered under DLS).
            m.dash_mem_access(t, p, block, kind);
        } else {
            m.dls_remote_miss(t, p, block, kind);
        }
    }

    fn deliver(&self, m: &mut Machine, t: Cycle, msg: Msg) -> bool {
        m.dls_deliver(t, msg)
    }

    fn request_msg(&self, _m: &Machine, _cl: usize, block: u64, was_write: bool) -> MsgKind {
        if was_write {
            MsgKind::WriteReq { block }
        } else {
            MsgKind::ReadReq { block }
        }
    }

    fn replay(&self, m: &mut Machine, t: Cycle, home: usize, req: scd_protocol::QueuedReq) {
        if req.requester == home {
            // A queued home-local request re-enters the DASH machinery.
            m.home_request(t, home, req.requester, req.block, req.is_write);
        } else {
            m.dls_home_service(t, home, req.requester, req.block, req.is_write);
        }
    }

    fn live_entries(&self, _node: &ClusterNode) -> usize {
        0
    }
}

impl Machine {
    /// A remote access under DLS: always a miss (remote clusters never
    /// hold a copy), resolved with a round-trip to the home slice.
    fn dls_remote_miss(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        // Record the (certain) miss against the hierarchy so the
        // L2-miss statistics stay comparable across protocols.
        let hit = self.clusters[cl].caches.access(lp, block, t);
        debug_assert!(hit.state().is_none(), "remote copy under DLS");
        let t = t + tm.l2_hit;
        let home = self.cfg.home_of(block);
        match self.clusters[cl].rac.start(block, kind, lp) {
            StartOutcome::IssueRequest => {
                self.trace_txn_begin(t, cl, block, kind == MshrKind::Write);
                let mk = if kind == MshrKind::Write {
                    MsgKind::WriteReq { block }
                } else {
                    MsgKind::ReadReq { block }
                };
                self.send(t, Msg { src: cl, dst: home, kind: mk });
            }
            StartOutcome::Merged | StartOutcome::WaitAndReissue => {}
        }
        self.block(t, p, false);
    }

    /// Services one remote request at the home LLC slice. Shared with
    /// the serializer replay path for requests that queued behind a
    /// home-cluster write in flight.
    pub(crate) fn dls_home_service(
        &mut self,
        t: Cycle,
        home: usize,
        requester: usize,
        block: u64,
        is_write: bool,
    ) {
        let tm = self.cfg.timing;
        if self.clusters[home].ser.is_busy(block) {
            // A home-cluster write was granted but has not filled yet:
            // the slice's content is still settling. Queue like DASH.
            self.clusters[home].ser.queue(
                block,
                scd_protocol::QueuedReq {
                    requester,
                    block,
                    is_write,
                },
            );
            return;
        }
        self.trace_txn_phase(t, home, requester, block, Phase::HomeLookup);
        if is_write {
            self.dls_counters.llc_writes += 1;
            if self.mutation == Some(explore::Mutation::DlsSkipWriteback) {
                // Test-only protocol bug: update the LLC slice without
                // invalidating the home cluster's own cached copies, so
                // the home keeps reading its stale line after a remote
                // write — the violation the model checker must catch.
            } else {
                // The home cluster's own copies are stale now; the block
                // has exactly one valid copy, the slice itself. A
                // home-local read fill still in flight was serialized
                // before this write: it may satisfy its waiters, but its
                // line must not persist (mirrors the DASH reorder rule).
                self.clusters[home].caches.invalidate_all(block);
                self.clusters[home].rac.poison_read(block);
            }
            // Zero invalidation *messages* by construction; record the
            // empty fan-out so the histogram stays comparable.
            self.inval_hist.record(0);
            self.trace_inval(t, home, block, 0, "write");
            let version = self.bump_version(home, block);
            self.send(
                t + tm.bus_memory,
                Msg {
                    src: home,
                    dst: requester,
                    kind: MsgKind::LlcWriteAck { block, version },
                },
            );
        } else {
            self.dls_counters.llc_fills += 1;
            // A dirty home copy supplies the slice; memory is now clean.
            self.clusters[home].caches.downgrade_all(block);
            let version = self.memory_version(home, block);
            self.send(
                t + tm.bus_memory,
                Msg {
                    src: home,
                    dst: requester,
                    kind: MsgKind::LlcFill { block, version },
                },
            );
        }
    }

    /// Delivers one DLS protocol message; everything that is not a
    /// remote LLC transaction is the home-local DASH machinery.
    pub(crate) fn dls_deliver(&mut self, t: Cycle, msg: Msg) -> bool {
        let Msg { src, dst, kind } = msg;
        let tm = self.cfg.timing;
        match kind {
            MsgKind::ReadReq { block } if src != dst => {
                self.dls_home_service(t, dst, src, block, false);
            }
            MsgKind::WriteReq { block } if src != dst => {
                self.dls_home_service(t, dst, src, block, true);
            }
            MsgKind::LlcFill { block, version } => {
                if self.fault_active {
                    // A duplicated read is serviced twice; the stray
                    // second fill finds no MSHR and is dropped.
                    match self.clusters[dst].rac.try_read_reply(block) {
                        Some(mshr) => self.dls_complete_read(t, dst, block, version, mshr),
                        None => self.faults.strays_dropped += 1,
                    }
                } else {
                    let mshr = self.clusters[dst].rac.read_reply(block);
                    self.dls_complete_read(t, dst, block, version, mshr);
                }
            }
            MsgKind::LlcWriteAck { block, version } => {
                if let Some(mshr) = self.clusters[dst].rac.write_reply(block, 0, version) {
                    self.trace_txn_end(t, dst, block);
                    self.set_line_version(dst, block, version);
                    self.observe(dst, block);
                    let (writer, _) = *mshr
                        .waiters
                        .first()
                        .expect("write MSHR has its initiating processor");
                    let g = self.global_proc(dst, writer);
                    self.oracle_write(g, block, version);
                    self.resume(t + tm.l1_hit, g);
                    for &(lp, _) in &mshr.waiters[1..] {
                        // Peers re-execute and take their own round-trip.
                        let g = self.global_proc(dst, lp);
                        self.retry(t + tm.bus_memory, g);
                    }
                }
            }
            _ => return self.dash_deliver(t, Msg { src, dst, kind }),
        }
        true
    }

    /// Completes a remote read: the fill is consumed by the waiting
    /// processors but never installed — under DLS the home slice stays
    /// the only copy, and the next read misses again.
    fn dls_complete_read(
        &mut self,
        t: Cycle,
        cl: usize,
        block: u64,
        version: u64,
        mshr: scd_protocol::Mshr,
    ) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        self.set_line_version(cl, block, version);
        for &(lp, kind) in &mshr.waiters {
            let g = self.global_proc(cl, lp);
            if kind == MshrKind::Read {
                self.observe(cl, block);
                self.oracle_read_at(g, block, version);
                self.resume(t + tm.l1_hit, g);
            } else {
                // Write waiter merged behind a read: reissue.
                self.retry(t + tm.l1_hit, g);
            }
        }
    }
}
