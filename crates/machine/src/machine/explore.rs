//! Bounded-step exploration of a [`Machine`]: the substrate `scd-check`
//! builds its exhaustive model checker on.
//!
//! A normal run ([`Machine::try_run`]) pops events in deterministic
//! `(time, schedule-order)` sequence. The physical machine, however, only
//! guarantees that order *per (src, dst) channel* — events that fall on
//! the same cycle on different channels (or processor-local events) are
//! races the protocol must tolerate in any order. Exploration makes that
//! nondeterminism explicit:
//!
//! * [`Machine::exploration_choices`] enumerates the legal next
//!   transitions out of the current state: every ready-set event whose
//!   delivery would not overtake an earlier same-cycle message on its own
//!   FIFO channel, plus — when enabled — *fault edges* mirroring the
//!   random fault modes of `scd-noc`'s `FaultPlan` (NACK a coherence
//!   request, delay it, duplicate a read request) as explicit branches.
//! * [`Machine::step_explore`] takes one of those choices, running the
//!   exact event-processing code a production run uses.
//! * [`Machine::state_digest`] canonically fingerprints the reached state
//!   (metrics excluded, times made relative) so a checker can deduplicate
//!   states across interleavings.
//! * `Machine: Clone` (thread programs fork at their current position)
//!   provides the branching itself.
//!
//! The digest's time-relativity assumes latencies depend only on the
//! (src, dst) pair. Under link contention (`cfg.link_occupancy`) the
//! network carries absolute busy times, so the digest then includes the
//! current cycle — merging is suppressed rather than made unsound.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use scd_protocol::{Msg, MsgKind};
use scd_sim::Cycle;

use super::{Ev, EvLog, Machine, ProcStatus};
use crate::error::SimError;
use crate::stats::RunStats;

/// Intentional protocol mutations, armed via [`Machine::arm_mutation`].
///
/// These exist to validate the *checker*: a mutated machine must produce a
/// counterexample. They are test-only in purpose but live in the public
/// API so `scd-check --mutate` can reach them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// On every write fan-out, skip one invalidation target *and* lower
    /// the acknowledgement count to match. The write completes normally,
    /// leaving a stale shared copy that outlives the new ownership epoch —
    /// a silent coherence violation (not a deadlock), exactly the class of
    /// bug only an invariant checker can see.
    SkipInval,
    /// Tardis only: on a write, advance `wts` by one instead of jumping
    /// past the old lease horizon (`rts + 1`). Readers holding live
    /// leases keep consuming the stale version as if it were current —
    /// the timestamp-coherence analogue of a missed invalidation.
    TardisSkipWtsBump,
    /// DLS only: a remote write updates the home LLC slice without
    /// invalidating the home cluster's own cached copies, so home-local
    /// reads keep returning the overwritten data.
    DlsSkipWriteback,
}

/// Which fault edges [`Machine::exploration_choices`] enumerates, mirroring
/// the modes of `scd_noc::FaultPlan` as nondeterministic transitions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultEdges {
    /// NACK coherence requests at delivery (plan: `nack_prob`).
    pub nack: bool,
    /// Delay a coherence request by this many cycles (plan: `reorder`
    /// jitter, which is channel-clamp-exempt). `None` disables.
    pub delay: Option<u64>,
    /// Duplicate a read request, the copy arriving this many cycles later
    /// (plan: `dup_prob`). `None` disables.
    pub dup: Option<u64>,
}

impl FaultEdges {
    /// No fault edges: explore only delivery-order nondeterminism.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if any fault edge is enabled.
    pub fn any(&self) -> bool {
        self.nack || self.delay.is_some() || self.dup.is_some()
    }
}

/// One enabled transition out of the current state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Choice {
    /// Deliver the `idx`-th ready-set event normally.
    Ready {
        /// Index into the current ready set (FIFO order).
        idx: usize,
    },
    /// Refuse the `idx`-th ready-set event — a coherence request — with a
    /// NACK, exactly as the fault plan's `nack_prob` mode would.
    Nack {
        /// Index into the current ready set.
        idx: usize,
    },
    /// Push the `idx`-th ready-set event (a coherence request) `delta`
    /// cycles into the future instead of delivering it.
    Delay {
        /// Index into the current ready set.
        idx: usize,
        /// Cycles of added latency.
        delta: u64,
    },
    /// Deliver the `idx`-th ready-set event (a read request) *and*
    /// schedule an identical duplicate `gap` cycles later.
    Dup {
        /// Index into the current ready set.
        idx: usize,
        /// Cycles until the duplicate arrives.
        gap: u64,
    },
}

impl Choice {
    /// The ready-set index this choice acts on.
    pub fn idx(&self) -> usize {
        match *self {
            Choice::Ready { idx }
            | Choice::Nack { idx }
            | Choice::Delay { idx, .. }
            | Choice::Dup { idx, .. } => idx,
        }
    }

    /// Whether this choice is a fault edge (costs fault budget).
    pub fn is_fault(&self) -> bool {
        !matches!(self, Choice::Ready { .. })
    }
}

/// True for the message kinds the fault model may NACK or delay: plain
/// coherence requests, which the protocol absorbs via serializer queueing
/// and RAC retry. Everything else (replies, invalidations, acks, forwards)
/// rides ordering assumptions that faults must not break — mirroring
/// `Machine::faulty_schedule`.
fn is_coherence_request(kind: MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::ReadReq { .. }
            | MsgKind::WriteReq { .. }
            | MsgKind::TardisReadReq { .. }
            | MsgKind::TardisWriteReq { .. }
    )
}

impl Machine {
    /// Arms a deliberate protocol bug (see [`Mutation`]). Survives
    /// cloning, so every explored branch carries the mutation.
    pub fn arm_mutation(&mut self, m: Mutation) {
        self.mutation = Some(m);
    }

    /// Seeds the event queue with each processor's first fetch, as
    /// [`Machine::try_run`] would. Call once before stepping.
    pub fn begin_exploration(&mut self) {
        self.start();
    }

    /// Switches the machine into fault-tolerant delivery mode — stray
    /// replies dropped at the RAC, requests from a recorded owner NACKed
    /// instead of parked — exactly as a configured `FaultPlan` would,
    /// but without any random injection. Explorers MUST call this before
    /// stepping when fault edges are enabled: the tolerance paths are the
    /// protocol's contract for absorbing NACKed, delayed, and duplicated
    /// requests, and without them an injected duplicate's second reply is
    /// (correctly) reported as a protocol violation.
    pub fn tolerate_faults(&mut self) {
        self.fault_active = true;
    }

    /// True when no events are pending — the state is a leaf; validate it
    /// with [`Machine::finalize_exploration`].
    pub fn exploration_done(&self) -> bool {
        self.queue.is_empty()
    }

    /// The current simulation cycle.
    pub fn now(&self) -> Cycle {
        self.queue.now()
    }

    /// Enumerates the legal transitions out of the current state.
    ///
    /// All ready-set (earliest-cycle) events are candidates, except that
    /// among same-channel `Deliver`s only the *first* is enabled — a
    /// (src, dst) channel is FIFO, so delivering a later message first
    /// would model a reordering the interconnect guarantees away. Fault
    /// edges per `faults` ride on deliverable coherence requests.
    ///
    /// An empty result means the state is a leaf (see
    /// [`Machine::exploration_done`]).
    pub fn exploration_choices(&mut self, faults: &FaultEdges) -> Vec<Choice> {
        let ready: Vec<Ev> = match self.queue.ready_set() {
            Some((_, evs)) => evs.into_iter().copied().collect(),
            None => return Vec::new(),
        };
        let mut seen_channels: HashSet<(usize, usize)> = HashSet::new();
        let mut out = Vec::new();
        for (idx, ev) in ready.iter().enumerate() {
            let Ev::Deliver(r) = ev else {
                out.push(Choice::Ready { idx });
                continue;
            };
            let Some(&msg) = self.arena.get(*r) else {
                // Stale handle: let `step_explore` surface the invariant
                // violation through the normal path.
                out.push(Choice::Ready { idx });
                continue;
            };
            if !seen_channels.insert((msg.src, msg.dst)) {
                continue; // blocked behind an earlier same-channel message
            }
            out.push(Choice::Ready { idx });
            if is_coherence_request(msg.kind) && msg.src != msg.dst {
                if faults.nack {
                    out.push(Choice::Nack { idx });
                }
                if let Some(delta) = faults.delay {
                    out.push(Choice::Delay { idx, delta });
                }
                if let Some(gap) = faults.dup {
                    if matches!(
                        msg.kind,
                        MsgKind::ReadReq { .. } | MsgKind::TardisReadReq { .. }
                    ) {
                        out.push(Choice::Dup { idx, gap });
                    }
                }
            }
        }
        out
    }

    /// Renders a choice for counterexample listings, resolving message
    /// payloads. Must be called *before* stepping the choice.
    pub fn describe_choice(&mut self, choice: Choice) -> String {
        let ev = self
            .queue
            .ready_set()
            .and_then(|(_, evs)| evs.get(choice.idx()).map(|e| **e));
        let rendered = match ev {
            Some(Ev::Deliver(r)) => match self.arena.get(r) {
                Some(msg) => format!("{msg:?}"),
                None => format!("stale handle {r:?}"),
            },
            Some(other) => format!("{other:?}"),
            None => "out-of-range".to_string(),
        };
        match choice {
            Choice::Ready { .. } => rendered,
            Choice::Nack { .. } => format!("NACK {rendered}"),
            Choice::Delay { delta, .. } => format!("DELAY+{delta} {rendered}"),
            Choice::Dup { gap, .. } => format!("DUP+{gap} {rendered}"),
        }
    }

    /// Takes one transition: pops the chosen ready event and either
    /// processes it (through the exact code path [`Machine::try_run`]
    /// uses) or applies the fault edge.
    ///
    /// # Panics
    /// If `choice` does not name a currently-enabled transition (an
    /// explorer bug, not a machine state) — including fault edges on
    /// non-request events. May also propagate protocol panics (version
    /// oracle, internal asserts); explorers catch those as violations.
    pub fn step_explore(&mut self, choice: Choice) -> Result<(), SimError> {
        let (t, ev) = self
            .queue
            .pop_ready(choice.idx())
            .expect("exploration choice out of range");
        match choice {
            Choice::Ready { .. } => self.process_event(t, ev),
            Choice::Nack { .. } => {
                let Ev::Deliver(r) = ev else {
                    panic!("NACK edge on non-delivery event {ev:?}");
                };
                let msg = self.arena.take(r).expect("NACK edge on stale handle");
                let (block, was_write) = match msg.kind {
                    MsgKind::ReadReq { block } | MsgKind::TardisReadReq { block, .. } => {
                        (block, false)
                    }
                    MsgKind::WriteReq { block } | MsgKind::TardisWriteReq { block } => {
                        (block, true)
                    }
                    k => panic!("NACK edge on non-request {k:?}"),
                };
                // Mirror the fault plan's NACK: refused at delivery, no
                // home state touched, requester backs off and retries.
                self.event_log.push((t, EvLog::Deliver(msg)));
                self.faults.nacks += 1;
                self.send(
                    t + self.cfg.timing.dir_lookup,
                    Msg {
                        src: msg.dst,
                        dst: msg.src,
                        kind: MsgKind::Nack { block, was_write },
                    },
                );
                Ok(())
            }
            Choice::Delay { delta, .. } => {
                // Clamp-exempt reorder jitter: the request may now land
                // behind traffic sent after it.
                debug_assert!(matches!(ev, Ev::Deliver(_)));
                self.faults.reorders += 1;
                self.queue.schedule_at(t + delta.max(1), ev);
                Ok(())
            }
            Choice::Dup { gap, .. } => {
                let Ev::Deliver(r) = ev else {
                    panic!("DUP edge on non-delivery event {ev:?}");
                };
                let msg = *self.arena.get(r).expect("DUP edge on stale handle");
                debug_assert!(matches!(
                    msg.kind,
                    MsgKind::ReadReq { .. } | MsgKind::TardisReadReq { .. }
                ));
                // The duplicate gets its own arena slot: every handle is
                // taken exactly once.
                let dup = self.arena.alloc(msg);
                self.queue.schedule_at(t + gap.max(1), Ev::Deliver(dup));
                self.faults.duplicates += 1;
                self.process_event(t, ev)
            }
        }
    }

    /// Leaf validation: the drained machine must have every processor
    /// retired, an empty arena, and (when configured) pass the quiescent
    /// coherence invariants — the same checks a production run ends with.
    pub fn finalize_exploration(&mut self) -> Result<RunStats, SimError> {
        self.finalize()
    }

    /// Runs the per-state coherence invariants (single writer,
    /// dirty-implies-exclusive); see `crate::checker::verify_step`.
    pub fn check_step_invariants(&self) -> Result<(), crate::checker::Violation> {
        crate::checker::verify_step(self)
    }

    /// Canonical fingerprint of the machine's protocol-visible state.
    ///
    /// Two states with equal digests behave identically under every
    /// future choice sequence, so a checker may explore just one of them.
    /// Guaranteed by construction: every behavior-steering component is
    /// hashed (pending events with payloads resolved, processor status and
    /// program positions, caches, directories, RACs, serializers, locks,
    /// barriers, version oracle), while run *metrics* — counters,
    /// histograms, stall accounting, high-water marks — are excluded,
    /// since they differ between paths that reach the same protocol state.
    /// Event times are hashed relative to the current cycle; recency state
    /// (cache LRU, sparse-directory replacement) is reduced to ranks.
    pub fn state_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        let now = self.queue.now();
        // Pending events, in delivery order, payloads resolved.
        self.queue.for_each_pending(|t, ev| {
            (t - now).hash(&mut h);
            match *ev {
                Ev::ProcNext(p) => (0u8, p).hash(&mut h),
                Ev::ProcRetry(p) => (1u8, p).hash(&mut h),
                Ev::Replay { home, block } => (2u8, home, block).hash(&mut h),
                Ev::Deliver(r) => match self.arena.get(r) {
                    Some(msg) => (3u8, msg).hash(&mut h),
                    None => 4u8.hash(&mut h),
                },
            }
        });
        0xE0u8.hash(&mut h);
        // Processors: status, pending op, and the forkable program cursor.
        for st in &self.procs {
            (st.status == ProcStatus::Running, st.status == ProcStatus::Done).hash(&mut h);
            st.pending.hash(&mut h);
            st.blocked_on_sync.hash(&mut h);
            st.program.cursor_digest().hash(&mut h);
        }
        self.running.hash(&mut h);
        0xE1u8.hash(&mut h);
        // Clusters: every protocol-state component.
        for c in &self.clusters {
            c.caches.fingerprint(&mut h);
            c.dir.fingerprint(&mut h);
            c.rac.fingerprint(&mut h);
            c.ser.fingerprint(&mut h);
            c.locks.fingerprint(&mut h);
            c.barriers.fingerprint(&mut h);
            let mut locks: Vec<u32> = c.lock_state.keys().copied().collect();
            locks.sort_unstable();
            for l in locks {
                let ls = &c.lock_state[&l];
                (l, ls.holder, &ls.waiters, ls.requested).hash(&mut h);
            }
            let mut barriers: Vec<u32> = c.barrier_local.keys().copied().collect();
            barriers.sort_unstable();
            for b in barriers {
                (b, &c.barrier_local[&b]).hash(&mut h);
            }
            let mut chains: Vec<u64> = c.serial_chains.keys().copied().collect();
            chains.sort_unstable();
            for b in chains {
                let (targets, requester, version) = &c.serial_chains[&b];
                (b, targets, requester, version).hash(&mut h);
            }
            let mut versions: Vec<(u64, u64)> =
                c.cur_version.iter().map(|(&b, &v)| (b, v)).collect();
            versions.sort_unstable();
            versions.hash(&mut h);
            // Line versions only matter for blocks actually resident.
            let resident = c.caches.cluster_resident();
            let mut lines: Vec<(u64, u64)> = c
                .line_version
                .iter()
                .filter(|(b, _)| resident.contains_key(b))
                .map(|(&b, &v)| (b, v))
                .collect();
            lines.sort_unstable();
            lines.hash(&mut h);
            let mut epochs: Vec<(u64, u64)> =
                c.last_owner_epoch.iter().map(|(&b, &v)| (b, v)).collect();
            epochs.sort_unstable();
            epochs.hash(&mut h);
            let mut bumps: Vec<u64> = c.pending_write_bump.iter().copied().collect();
            bumps.sort_unstable();
            bumps.hash(&mut h);
            // Tardis timestamp state (default-empty under other protocols).
            c.tardis.pts.hash(&mut h);
            let mut leases: Vec<(u64, (u64, u64))> =
                c.tardis.lease.iter().map(|(&b, &v)| (b, v)).collect();
            leases.sort_unstable();
            leases.hash(&mut h);
            let mut renews: Vec<(u64, &Vec<usize>)> =
                c.tardis.renew_pending.iter().map(|(&b, v)| (b, v)).collect();
            renews.sort_unstable_by_key(|&(b, _)| b);
            renews.hash(&mut h);
            let mut tlines: Vec<(u64, (u64, u64))> = c
                .tardis
                .lines
                .iter()
                .map(|(&b, l)| (b, (l.wts, l.rts)))
                .collect();
            tlines.sort_unstable();
            tlines.hash(&mut h);
            let mut lpts: Vec<(u32, u64)> =
                c.tardis.lock_pts.iter().map(|(&k, &v)| (k, v)).collect();
            lpts.sort_unstable();
            lpts.hash(&mut h);
            let mut bpts: Vec<(u32, u64)> =
                c.tardis.barrier_pts.iter().map(|(&k, &v)| (k, v)).collect();
            bpts.sort_unstable();
            bpts.hash(&mut h);
        }
        0xE2u8.hash(&mut h);
        // Version-oracle observations steer future assertions.
        let mut observed: Vec<((usize, u64), u64)> =
            self.observed.iter().map(|(&k, &v)| (k, v)).collect();
        observed.sort_unstable();
        observed.hash(&mut h);
        // Channel clamps still in the future constrain deliveries.
        let mut clamps: Vec<(usize, usize, u64)> = self
            .chan_clamp
            .iter()
            .filter(|(_, &c)| c > now)
            .map(|(&(s, d), &c)| (s, d, c - now))
            .collect();
        clamps.sort_unstable();
        clamps.hash(&mut h);
        self.mutation.hash(&mut h);
        // Contention carries absolute link-busy times in the network;
        // include the clock so states at different times never merge.
        if self.cfg.link_occupancy.is_some() {
            now.hash(&mut h);
        }
        h.finish()
    }
}
