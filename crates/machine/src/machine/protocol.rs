//! The pluggable coherence-protocol interface.
//!
//! The engine (`machine.rs`) owns everything a protocol does *not*
//! define: the event wheel, message transport and fault injection,
//! processor scheduling, synchronization, telemetry, and the sharding
//! substrate. A backend defines what happens when a processor touches
//! shared memory and when a protocol-specific message arrives. Three
//! backends exist:
//!
//! * [`DashProtocol`](super::dash::DashProtocol) — the paper's
//!   directory-based invalidation protocol (the default).
//! * [`TardisProtocol`](super::tardis::TardisProtocol) — timestamp
//!   coherence: lease-based reads, no invalidation fan-out.
//! * [`DlsProtocol`](super::dls::DlsProtocol) — directoryless shared
//!   LLC: every remote miss resolves at the home slice, no directory
//!   state at all.
//!
//! Backends are stateless unit structs (`&'static dyn`), so the engine
//! can dispatch without borrowing any machine state.

use super::*;
use crate::config::ProtocolKind;

/// One coherence protocol: the processor-side access path plus the
/// protocol-specific message handlers.
pub(crate) trait CoherenceProtocol: Sync {
    /// Which [`ProtocolKind`] this backend implements.
    #[allow(dead_code)]
    fn kind(&self) -> ProtocolKind;

    /// A processor touched shared memory: run the access to completion
    /// (hit) or issue the protocol's miss transaction and block the
    /// processor. `block` is already line-aligned.
    fn mem_access(&self, m: &mut Machine, t: Cycle, p: usize, block: u64, kind: MshrKind);

    /// A protocol-specific message arrived at `msg.dst`. Returns `false`
    /// when the kind belongs to another backend (the engine treats that
    /// as a routing bug and panics).
    fn deliver(&self, m: &mut Machine, t: Cycle, msg: Msg) -> bool;

    /// The request message this protocol (re)issues for `block` — used
    /// by the engine's NACK-retry path, which must reissue whatever the
    /// original miss sent.
    fn request_msg(&self, m: &Machine, cl: usize, block: u64, was_write: bool) -> MsgKind;

    /// A queued home-side request came off the serializer: service it.
    /// Only protocols that queue (DASH always; DLS behind a home-local
    /// write) ever see a replay.
    fn replay(&self, m: &mut Machine, t: Cycle, home: usize, req: scd_protocol::QueuedReq);

    /// How many live directory-equivalent entries `node` holds (the
    /// paper's memory-overhead metric; timestamp state for Tardis, zero
    /// for the directoryless LLC).
    fn live_entries(&self, node: &ClusterNode) -> usize;
}

/// Resolves a [`ProtocolKind`] to its backend. `'static` so call sites
/// can hold the handle across `&mut Machine` borrows.
pub(crate) fn backend(kind: ProtocolKind) -> &'static dyn CoherenceProtocol {
    match kind {
        ProtocolKind::Dash => &super::dash::DashProtocol,
        ProtocolKind::Tardis => &super::tardis::TardisProtocol,
        ProtocolKind::Dls => &super::dls::DlsProtocol,
    }
}
