//! The cross-protocol value oracle: a symbolic memory image.
//!
//! Every protocol backend reports the same two facts through the hooks
//! here — "processor `p` performed its `n`-th write to `block`,
//! creating version epoch `e`" and "processor `p`'s load of `block`
//! observed epoch `e`". Values are never simulated; a write is
//! identified by its *tag* `(proc, seq)`, which is protocol-independent
//! (version epochs are not: Tardis assigns one per write, DASH one per
//! ownership epoch). Resolving every load and the final per-block state
//! to tags yields a memory image two different protocols can be
//! compared on — the differential oracle in
//! `tests/protocol_differential.rs` asserts dash, tardis and dls
//! produce identical images and identical per-load tags on the same
//! program.
//!
//! Resolution is *post-run*: a load usually records the `(block,
//! epoch)` it observed and looks the tag up after the machine (or every
//! shard) has quiesced, because under sharding the write that produced
//! an epoch may retire on another worker. The one case that must
//! resolve eagerly is a load followed by a same-epoch overwrite (a
//! silent DASH dirty-write hit by a cluster-local peer — necessarily
//! the same shard), so a load resolves immediately whenever the epoch's
//! tag is already known locally.
//!
//! The oracle is only meaningful for **data-race-free programs**: a
//! racy load may legitimately observe different writes under different
//! protocols (or different shard counts), so the differential kernels
//! are barrier-ordered. It is off by default
//! (`MachineConfig::value_oracle`) and costs nothing when off.

use super::*;
use std::collections::BTreeMap;

/// One recorded load observation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ReadRec {
    /// Resolved at read time (the writing proc's tag was known locally).
    Resolved((usize, u64)),
    /// Deferred to post-run resolution: the `(block, epoch)` observed.
    Deferred(u64, u64),
}

/// The machine-side oracle state (one per machine / shard; merged
/// across shards before reporting).
#[derive(Clone, Debug, Default)]
pub(crate) struct ValueOracle {
    /// Pre-computed `cfg.value_oracle`, checked once per hook.
    pub(crate) on: bool,
    /// `(block, epoch)` -> tag of the latest write in that epoch.
    pub(crate) mem: HashMap<(u64, u64), (usize, u64)>,
    /// Per global processor: its loads, in program order.
    pub(crate) reads: Vec<Vec<ReadRec>>,
    /// Per global processor: how many writes it has performed.
    pub(crate) wseq: Vec<u64>,
}

impl ValueOracle {
    pub(crate) fn new(on: bool, procs: usize) -> Self {
        ValueOracle {
            on,
            mem: HashMap::new(),
            reads: vec![Vec::new(); procs],
            wseq: vec![0; procs],
        }
    }

    /// Folds another shard's oracle into this one. Exact because the
    /// logs partition: each processor's reads/writes retire on its
    /// owning shard, and a `(block, epoch)` tag is only ever rewritten
    /// (silent same-epoch dirty hit) by the cluster that created it.
    pub(crate) fn absorb(&mut self, other: &ValueOracle) {
        for (&k, &v) in &other.mem {
            self.mem.insert(k, v);
        }
        for (p, log) in other.reads.iter().enumerate() {
            if !log.is_empty() {
                self.reads[p] = log.clone();
            }
        }
        for (p, &s) in other.wseq.iter().enumerate() {
            if s > 0 {
                self.wseq[p] = s;
            }
        }
    }

    /// Resolves the log into a comparable report. Call only after the
    /// run (and any cross-shard merge) is complete.
    pub(crate) fn report(&self) -> ValueOracleReport {
        let mut best: HashMap<u64, u64> = HashMap::new();
        let mut image: BTreeMap<u64, (usize, u64)> = BTreeMap::new();
        for (&(b, e), &tag) in &self.mem {
            let cur = best.entry(b).or_insert(0);
            if e >= *cur {
                *cur = e;
                image.insert(b, tag);
            }
        }
        let loads = self
            .reads
            .iter()
            .map(|log| {
                log.iter()
                    .map(|r| match *r {
                        ReadRec::Resolved(tag) => Some(tag),
                        ReadRec::Deferred(b, e) => self.mem.get(&(b, e)).copied(),
                    })
                    .collect()
            })
            .collect();
        ValueOracleReport { image, loads }
    }
}

/// The resolved value-oracle outcome of one run, comparable across
/// protocols, shard counts, and (for race-free programs) schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValueOracleReport {
    /// Final memory image: block -> tag `(proc, seq)` of the last write
    /// (blocks never written are absent — initial memory).
    pub image: BTreeMap<u64, (usize, u64)>,
    /// Per global processor, its shared loads in program order: the tag
    /// of the write each observed (`None` = initial memory).
    pub loads: Vec<Vec<Option<(usize, u64)>>>,
}

impl Machine {
    /// Hook: processor `p` performed a write to `block` creating (or
    /// extending, for a silent same-epoch rewrite) version `epoch`.
    pub(crate) fn oracle_write(&mut self, p: usize, block: u64, epoch: u64) {
        if !self.oracle.on {
            return;
        }
        let seq = self.oracle.wseq[p] + 1;
        self.oracle.wseq[p] = seq;
        self.oracle.mem.insert((block, epoch), (p, seq));
    }

    /// Hook: processor `p`'s load observed its cluster's resident copy
    /// of `block` (whose epoch is the cluster's `line_version`).
    pub(crate) fn oracle_read(&mut self, p: usize, block: u64) {
        if !self.oracle.on {
            return;
        }
        let cl = self.cluster_of(p);
        let epoch = self.clusters[cl]
            .line_version
            .get(&block)
            .copied()
            .unwrap_or(0);
        self.oracle_read_at(p, block, epoch);
    }

    /// Hook: processor `p`'s load observed `block` at a known `epoch`
    /// (uncached DLS fills, which never install a line to read the
    /// epoch back from).
    pub(crate) fn oracle_read_at(&mut self, p: usize, block: u64, epoch: u64) {
        if !self.oracle.on {
            return;
        }
        let rec = match self.oracle.mem.get(&(block, epoch)) {
            Some(&tag) => ReadRec::Resolved(tag),
            None => ReadRec::Deferred(block, epoch),
        };
        self.oracle.reads[p].push(rec);
    }

    /// The resolved value-oracle report, or `None` when the oracle was
    /// off (`MachineConfig::value_oracle`). Meaningful only after the
    /// run completed; see the module docs for the race-free caveat.
    pub fn value_oracle_report(&self) -> Option<ValueOracleReport> {
        self.oracle.on.then(|| self.oracle.report())
    }
}
