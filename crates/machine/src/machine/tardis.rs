//! The Tardis protocol backend: timestamp coherence.
//!
//! Tardis replaces the directory's sharer bookkeeping with two logical
//! timestamps per block at the home — a write timestamp `wts` (when the
//! current data version was logically written) and a read timestamp
//! `rts` (the lease horizon: the last logical time any reader may
//! observe this version). A read is granted a *lease* `[wts, rts]`; it
//! stays valid while the reader's program timestamp `pts` is at most
//! `rts`, so shared copies expire by timestamp comparison instead of by
//! invalidation messages — there is no fan-out, no sharer list, and no
//! recall traffic at all.
//!
//! This implementation models *base* Tardis without the
//! exclusive-ownership (M-state) optimization: writes are
//! **write-through at the home**. Every write round-trips to the home
//! slice, which bumps `wts` past every outstanding lease
//! (`wts' = rts + 1`) so no reader with an older copy can order its
//! reads after the write — that single rule is what the checker's
//! "single writer per timestamp range" invariant captures. The
//! simplification costs per-write latency (visible in the sweep
//! comparison) but removes ownership migration, forwarding, and
//! writeback races from the state space entirely: the home is never
//! busy and no request is ever queued or NACKed by the protocol.
//!
//! Expired leases renew with a timestamp-only `RenewReq`/`RenewReply`
//! exchange (header traffic, `dir_lookup` at the home instead of a full
//! memory fetch) when the home's `wts` still matches; otherwise the
//! copy is stale and the reader refetches. Renewals ride outside the
//! RAC's MSHR machinery — they are idempotent timestamp reads, so they
//! need none of its merge/poison/retry protocol — and are therefore
//! also outside the fault injector's scope (which perturbs coherence
//! *requests*; see DESIGN.md §16).
//!
//! Synchronization orders timestamps: lock handoffs and barrier
//! releases carry the maximum `pts` seen by the participants, so a
//! processor entering a new phase has `pts` at least as large as every
//! write that preceded the barrier — which is exactly what expires the
//! stale leases those writes outran.

use super::*;
use crate::config::ProtocolKind;

/// Lease length in logical-timestamp units: a read may extend the
/// block's `rts` to `max(wts, pts) + LEASE`. Short enough that a reader
/// whose `pts` advances (via barriers or its own writes) re-validates
/// promptly; long enough that a phase of pure re-reads stays local.
pub(crate) const LEASE: u64 = 8;

/// Home-side timestamp state for one block (the Tardis analogue of a
/// directory entry: two counters, no sharer set).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TardisLine {
    /// Write timestamp: the logical time of the current data version.
    pub(crate) wts: u64,
    /// Read timestamp: the lease horizon granted over this version.
    /// Invariant: `rts >= wts`.
    pub(crate) rts: u64,
}

/// Per-cluster Tardis state, embedded in every `ClusterNode` and left
/// default-empty under the other protocols.
#[derive(Clone, Debug, Default)]
pub(crate) struct TardisNode {
    /// This cluster's program timestamp: the logical time of the last
    /// write it performed or synchronized with.
    pub(crate) pts: u64,
    /// Leases over resident copies: block -> (wts, rts).
    pub(crate) lease: HashMap<u64, (u64, u64)>,
    /// Local processors parked on an in-flight lease renewal.
    pub(crate) renew_pending: HashMap<u64, Vec<usize>>,
    /// Home-side timestamp lines (this cluster acting as home).
    pub(crate) lines: HashMap<u64, TardisLine>,
    /// Home-side: max `pts` released through each lock, handed to the
    /// next holder with the grant.
    pub(crate) lock_pts: HashMap<u32, u64>,
    /// Home-side: max `pts` carried by barrier arrivals, broadcast with
    /// the release.
    pub(crate) barrier_pts: HashMap<u32, u64>,
}

/// Unit backend handle for the Tardis protocol (see
/// [`protocol::CoherenceProtocol`]).
pub(crate) struct TardisProtocol;

impl protocol::CoherenceProtocol for TardisProtocol {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Tardis
    }

    fn mem_access(&self, m: &mut Machine, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        m.tardis_mem_access(t, p, block, kind);
    }

    fn deliver(&self, m: &mut Machine, t: Cycle, msg: Msg) -> bool {
        m.tardis_deliver(t, msg)
    }

    fn request_msg(&self, m: &Machine, cl: usize, block: u64, was_write: bool) -> MsgKind {
        if was_write {
            MsgKind::TardisWriteReq { block }
        } else {
            MsgKind::TardisReadReq {
                block,
                pts: m.clusters[cl].tardis.pts,
            }
        }
    }

    fn replay(&self, _m: &mut Machine, _t: Cycle, _home: usize, _req: scd_protocol::QueuedReq) {
        // The Tardis home is never busy: no request ever queues.
        unreachable!("tardis never queues home requests");
    }

    fn live_entries(&self, node: &ClusterNode) -> usize {
        node.tardis.lines.len()
    }
}

impl Machine {
    /// Tardis processor-side access: a read hits while the lease covers
    /// the cluster's `pts`, renews when only the lease expired, and
    /// refetches otherwise. Writes always issue to the home
    /// (write-through; a write "hit" still round-trips).
    pub(crate) fn tardis_mem_access(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let tm = self.cfg.timing;
        let hit = self.clusters[cl].caches.access(lp, block, t);
        if hit.state().is_some() && kind == MshrKind::Read {
            let node = &self.clusters[cl].tardis;
            let lat = match hit {
                HitLevel::L1(_) => tm.l1_hit,
                _ => tm.l2_hit,
            };
            match node.lease.get(&block) {
                Some(&(_, rts)) if node.pts <= rts => {
                    // Lease still covers our logical time: a pure hit.
                    self.observe(cl, block);
                    self.oracle_read(p, block);
                    self.resume(t + lat, p);
                    return;
                }
                Some(&(wts, _)) => {
                    // Resident but expired: try a timestamp-only renewal
                    // before paying for a refetch.
                    return self.tardis_renew(t + tm.l2_hit, p, block, wts);
                }
                None => {
                    // Resident copy without a lease (invalidated by a
                    // failed renewal while another processor raced in):
                    // fall through to the miss path.
                }
            }
        }
        self.tardis_miss(t + tm.l2_hit, p, block, kind);
    }

    /// Issues (or merges into) a Tardis miss transaction through the RAC.
    fn tardis_miss(&mut self, t: Cycle, p: usize, block: u64, kind: MshrKind) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let home = self.cfg.home_of(block);
        match self.clusters[cl].rac.start(block, kind, lp) {
            StartOutcome::IssueRequest => {
                self.trace_txn_begin(t, cl, block, kind == MshrKind::Write);
                let mk = if kind == MshrKind::Write {
                    MsgKind::TardisWriteReq { block }
                } else {
                    MsgKind::TardisReadReq {
                        block,
                        pts: self.clusters[cl].tardis.pts,
                    }
                };
                self.send(t, Msg { src: cl, dst: home, kind: mk });
            }
            StartOutcome::Merged | StartOutcome::WaitAndReissue => {}
        }
        self.block(t, p, false);
    }

    /// Parks `p` on a lease renewal for `block`, sending the request if
    /// none is outstanding.
    fn tardis_renew(&mut self, t: Cycle, p: usize, block: u64, wts: u64) {
        let (cl, lp) = (self.cluster_of(p), self.local_of(p));
        let home = self.cfg.home_of(block);
        let pts = self.clusters[cl].tardis.pts;
        let pending = self.clusters[cl].tardis.renew_pending.entry(block).or_default();
        let first = pending.is_empty();
        pending.push(lp);
        if first {
            self.send(
                t,
                Msg {
                    src: cl,
                    dst: home,
                    kind: MsgKind::RenewReq { block, wts, pts },
                },
            );
        }
        self.block(t, p, false);
    }

    /// Delivers one Tardis protocol message. Returns `false` for kinds
    /// that belong to another backend.
    pub(crate) fn tardis_deliver(&mut self, t: Cycle, msg: Msg) -> bool {
        let Msg { src, dst, kind } = msg;
        let tm = self.cfg.timing;
        match kind {
            MsgKind::TardisReadReq { block, pts } => {
                self.trace_txn_phase(t, dst, src, block, Phase::HomeLookup);
                let line = self.clusters[dst].tardis.lines.entry(block).or_default();
                // Extend the lease past the requester's logical time so
                // the copy is immediately useful to it.
                line.rts = line.rts.max(line.wts.max(pts) + LEASE);
                let (wts, rts) = (line.wts, line.rts);
                self.tardis_counters.lease_fills += 1;
                let version = self.memory_version(dst, block);
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: dst,
                        dst: src,
                        kind: MsgKind::TardisReadReply { block, wts, rts, version },
                    },
                );
            }
            MsgKind::TardisWriteReq { block } => {
                self.trace_txn_phase(t, dst, src, block, Phase::HomeLookup);
                let line = self.clusters[dst].tardis.lines.entry(block).or_default();
                // Jump past every lease ever granted over the old
                // version: any reader holding one orders logically
                // before this write, and no new lease can cover it.
                let wts = if self.mutation == Some(explore::Mutation::TardisSkipWtsBump) {
                    // Test-only protocol bug: advance wts without
                    // clearing the outstanding leases, so a reader whose
                    // pts is inside a stale lease keeps hitting on old
                    // data after the write.
                    line.wts + 1
                } else {
                    line.rts + 1
                };
                line.wts = wts;
                line.rts = line.rts.max(wts);
                self.tardis_counters.write_throughs += 1;
                // No invalidations, ever: record the zero fan-out so the
                // paper's invalidation histogram stays comparable.
                self.inval_hist.record(0);
                self.trace_inval(t, dst, block, 0, "write");
                let version = self.bump_version(dst, block);
                self.send(
                    t + tm.bus_memory,
                    Msg {
                        src: dst,
                        dst: src,
                        kind: MsgKind::TardisWriteReply { block, wts, version },
                    },
                );
            }
            MsgKind::RenewReq { block, wts, pts } => {
                let line = self.clusters[dst].tardis.lines.entry(block).or_default();
                if line.wts == wts {
                    // Same version: extend the lease. Timestamp-only —
                    // `dir_lookup` at the home, no memory fetch.
                    line.rts = line.rts.max(line.wts.max(pts) + LEASE);
                    let rts = line.rts;
                    self.tardis_counters.renewals += 1;
                    self.send(
                        t + tm.dir_lookup,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::RenewReply { block, renewed: true, rts },
                        },
                    );
                } else {
                    // The version moved on: the copy is stale.
                    self.send(
                        t + tm.dir_lookup,
                        Msg {
                            src: dst,
                            dst: src,
                            kind: MsgKind::RenewReply { block, renewed: false, rts: 0 },
                        },
                    );
                }
            }
            MsgKind::TardisReadReply { block, wts, rts, version } => {
                if self.fault_active {
                    // Duplicated requests produce one reply per service;
                    // only the first finds the MSHR, the stray is dropped.
                    match self.clusters[dst].rac.try_read_reply(block) {
                        Some(mshr) => {
                            self.tardis_install(dst, block, wts, rts, version);
                            self.complete_read(t, dst, block, mshr);
                        }
                        None => self.faults.strays_dropped += 1,
                    }
                } else {
                    let mshr = self.clusters[dst].rac.read_reply(block);
                    self.tardis_install(dst, block, wts, rts, version);
                    self.complete_read(t, dst, block, mshr);
                }
            }
            MsgKind::TardisWriteReply { block, wts, version } => {
                if let Some(mshr) = self.clusters[dst].rac.write_reply(block, 0, version) {
                    self.tardis_complete_write(t, dst, block, wts, version, mshr);
                }
            }
            MsgKind::RenewReply { block, renewed, rts } => {
                let waiters = self
                    .clusters[dst]
                    .tardis
                    .renew_pending
                    .remove(&block)
                    .unwrap_or_default();
                if renewed {
                    if let Some(l) = self.clusters[dst].tardis.lease.get_mut(&block) {
                        l.1 = l.1.max(rts);
                    }
                    for lp in waiters {
                        self.observe(dst, block);
                        let g = self.global_proc(dst, lp);
                        self.oracle_read(g, block);
                        self.resume(t + tm.l1_hit, g);
                    }
                } else {
                    // Stale copy: drop it and re-execute the reads, which
                    // now take the refetch path.
                    self.tardis_counters.renew_refetches += 1;
                    self.clusters[dst].caches.invalidate_all(block);
                    self.clusters[dst].tardis.lease.remove(&block);
                    for lp in waiters {
                        let g = self.global_proc(dst, lp);
                        self.retry(t + tm.l1_hit, g);
                    }
                }
            }
            _ => return false,
        }
        true
    }

    /// Installs a granted lease: records `(wts, rts)`, advances the
    /// cluster's `pts` to at least `wts` (a load observes the write that
    /// produced its data), and updates the version oracle.
    fn tardis_install(&mut self, cl: usize, block: u64, wts: u64, rts: u64, version: u64) {
        self.set_line_version(cl, block, version);
        let node = &mut self.clusters[cl].tardis;
        node.lease.insert(block, (wts, rts));
        node.pts = node.pts.max(wts);
    }

    /// Completes a write at its requester: the writer's copy becomes a
    /// leased *shared* line (memory already holds the data —
    /// write-through), peers re-execute against it.
    fn tardis_complete_write(
        &mut self,
        t: Cycle,
        cl: usize,
        block: u64,
        wts: u64,
        version: u64,
        mshr: scd_protocol::Mshr,
    ) {
        self.trace_txn_end(t, cl, block);
        let tm = self.cfg.timing;
        let (writer, _) = *mshr
            .waiters
            .first()
            .expect("write MSHR has its initiating processor");
        // Stale local shared copies vanish over the bus.
        self.clusters[cl].caches.invalidate_others(writer, block);
        self.fill(t, cl, writer, block, LineState::Shared);
        self.tardis_install(cl, block, wts, wts, version);
        self.observe(cl, block);
        let g = self.global_proc(cl, writer);
        self.oracle_write(g, block, version);
        self.resume(t + tm.l1_hit, g);
        for &(lp, _) in &mshr.waiters[1..] {
            // Peers re-execute; reads hit the fresh lease over the bus.
            let g = self.global_proc(cl, lp);
            self.retry(t + tm.bus_memory, g);
        }
    }

    // --------------------------------------------------------------
    // Timestamp piggybacks on the engine's synchronization messages.
    // All of these are inert (zero / no-op) unless the machine runs
    // the Tardis protocol.
    // --------------------------------------------------------------

    /// The `pts` a sync message leaving cluster `cl` should carry.
    pub(crate) fn sync_pts(&self, cl: usize) -> u64 {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return 0;
        }
        self.clusters[cl].tardis.pts
    }

    /// Absorbs a `pts` carried by an incoming grant or release.
    pub(crate) fn absorb_pts(&mut self, cl: usize, pts: u64) {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return;
        }
        let node = &mut self.clusters[cl].tardis;
        node.pts = node.pts.max(pts);
    }

    /// Home-side: a release carried the holder's `pts`; fold it into
    /// the lock's running maximum.
    pub(crate) fn note_lock_pts(&mut self, home: usize, lock: u32, pts: u64) {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return;
        }
        let e = self.clusters[home].tardis.lock_pts.entry(lock).or_insert(0);
        *e = (*e).max(pts);
    }

    /// Home-side: the `pts` a lock grant hands to the next holder.
    pub(crate) fn lock_grant_pts(&self, home: usize, lock: u32) -> u64 {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return 0;
        }
        self.clusters[home]
            .tardis
            .lock_pts
            .get(&lock)
            .copied()
            .unwrap_or(0)
    }

    /// Home-side: a barrier arrival carried a cluster's `pts`.
    pub(crate) fn note_barrier_pts(&mut self, home: usize, barrier: u32, pts: u64) {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return;
        }
        let e = self
            .clusters[home]
            .tardis
            .barrier_pts
            .entry(barrier)
            .or_insert(0);
        *e = (*e).max(pts);
    }

    /// Home-side: the maximum `pts` across a barrier's arrivals,
    /// broadcast with the release (and reset for the next episode).
    pub(crate) fn take_barrier_pts(&mut self, home: usize, barrier: u32) -> u64 {
        if self.cfg.protocol != ProtocolKind::Tardis {
            return 0;
        }
        self.clusters[home]
            .tardis
            .barrier_pts
            .remove(&barrier)
            .unwrap_or(0)
    }
}
