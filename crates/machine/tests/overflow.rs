//! End-to-end tests of the overflow directory organization (§7 future
//! work): small per-block pointer entries promoted into a wide full-vector
//! cache on overflow.

use scd_core::{Replacement, Scheme};
use scd_machine::{Machine, MachineConfig, RunStats};
use scd_stats::MessageClass::*;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn addr(block: u64) -> u64 {
    block * 16
}

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

fn overflow_cfg(clusters: usize, i: usize, wide: usize) -> MachineConfig {
    MachineConfig::tiny(clusters).with_overflow(i, wide, wide.min(2), Replacement::Lru)
}

#[test]
fn widely_shared_block_promotes_instead_of_evicting() {
    // 6 clusters, i = 1, plenty of wide slots: clusters 1..=4 all read
    // block 0. Under plain Dir1NB this would thrash; with the overflow
    // cache the block promotes and everyone keeps their copy.
    let n = 6;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0)]];
    for _ in 1..=4 {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    scripts.push(vec![Op::Barrier(0)]);
    let stats = run(overflow_cfg(n, 1, 8), scripts);
    let o = stats.overflow.expect("overflow stats present");
    assert_eq!(o.promotions, 1);
    assert_eq!(o.fallback_evictions, 0);
    assert_eq!(
        stats.traffic.get(Invalidation),
        0,
        "no NB eviction flushes with a wide slot available"
    );
}

#[test]
fn promoted_block_invalidates_exactly_like_full_vector() {
    // After promotion, a write must invalidate exactly the true sharers.
    let n = 6;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0)]];
    for _ in 1..=4 {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    scripts.push(vec![Op::Barrier(0), Op::Write(addr(0))]);
    let stats = run(overflow_cfg(n, 1, 8), scripts);
    // Writer is cluster 5; sharers 1..=4 all get exact invalidations.
    assert_eq!(stats.traffic.get(Invalidation), 4);
    assert_eq!(stats.traffic.get(Acknowledgement), 4);
    assert_eq!(stats.invalidations.count(4), 1);
}

#[test]
fn write_collapse_demotes_back_to_small() {
    let n = 6;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0)]];
    for _ in 1..=4 {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    scripts.push(vec![Op::Barrier(0), Op::Write(addr(0))]);
    let stats = run(overflow_cfg(n, 1, 8), scripts);
    let o = stats.overflow.unwrap();
    assert_eq!(o.promotions, 1);
    assert_eq!(o.demotions, 1, "single dirty owner fits a small entry again");
}

#[test]
fn wide_cache_pressure_displaces_victims() {
    // One wide slot; two different blocks overflow: the second promotion
    // displaces the first, flushing its sharers.
    let n = 6;
    let reads = |b: u64| vec![Op::Read(addr(b)), Op::Barrier(0), Op::Barrier(1)];
    let scripts: Vec<Vec<Op>> = vec![
        vec![Op::Barrier(0), Op::Barrier(1)],
        reads(0),
        reads(0),
        // Block 6 also homes at cluster 0 and overflows in phase 2.
        vec![Op::Barrier(0), Op::Read(addr(6)), Op::Barrier(1)],
        vec![Op::Barrier(0), Op::Read(addr(6)), Op::Barrier(1)],
        vec![Op::Barrier(0), Op::Barrier(1)],
    ];
    let stats = run(overflow_cfg(n, 1, 1), scripts);
    let o = stats.overflow.unwrap();
    assert_eq!(o.promotions, 2);
    assert_eq!(o.displacements, 1, "second promotion displaces the first");
    assert!(
        stats.traffic.get(Invalidation) >= 2,
        "displaced victim's two sharers are flushed"
    );
}

#[test]
fn overflow_beats_nb_on_read_shared_data() {
    // The §7 motivation: read-by-all data. Compare Dir1NB against
    // Dir1 + overflow cache on a repeated-wide-read workload.
    let n = 8;
    let script = |c: usize| -> Vec<Op> {
        let mut ops = Vec::new();
        for round in 0..6 {
            if c > 0 {
                for b in 0..4u64 {
                    ops.push(Op::Read(addr(b)));
                }
            }
            ops.push(Op::Barrier(round % 2));
        }
        ops
    };
    let scripts: Vec<Vec<Op>> = (0..n).map(script).collect();
    let nb = run(
        MachineConfig::tiny(n).with_scheme(Scheme::dir_nb(1)),
        scripts.clone(),
    );
    let of = run(overflow_cfg(n, 1, 8), scripts);
    assert!(
        of.traffic.total() * 2 < nb.traffic.total(),
        "overflow {} should be far below NB thrash {}",
        of.traffic.total(),
        nb.traffic.total()
    );
    assert_eq!(of.traffic.get(Invalidation), 0);
    assert!(nb.traffic.get(Invalidation) > 50);
}

#[test]
fn randomized_stress_stays_coherent_under_overflow() {
    use scd_sim::SimRng;
    for seed in 0..6 {
        let mut root = SimRng::new(0x0F_10 + seed);
        let scripts: Vec<Vec<Op>> = (0..8)
            .map(|p| {
                let mut rng = root.fork(p);
                (0..300)
                    .map(|_| {
                        let b = rng.below(24);
                        if rng.chance(0.35) {
                            Op::Write(addr(b))
                        } else {
                            Op::Read(addr(b))
                        }
                    })
                    .collect()
            })
            .collect();
        // Tiny wide cache so displacements and pinned-set fallbacks occur.
        let stats = run(overflow_cfg(8, 2, 2), scripts);
        assert!(stats.cycles > 0, "seed {seed}");
    }
}

#[test]
fn overflow_with_multiprocessor_clusters() {
    use scd_sim::SimRng;
    let mut root = SimRng::new(77);
    let scripts: Vec<Vec<Op>> = (0..16)
        .map(|p| {
            let mut rng = root.fork(p);
            (0..200)
                .map(|_| {
                    let b = rng.below(24);
                    if rng.chance(0.3) {
                        Op::Write(addr(b))
                    } else {
                        Op::Read(addr(b))
                    }
                })
                .collect()
        })
        .collect();
    let mut cfg = overflow_cfg(4, 2, 4);
    cfg.procs_per_cluster = 4;
    let stats = run(cfg, scripts);
    assert_eq!(stats.shared_refs(), 16 * 200);
}
