//! Multi-processor clusters (DASH hardware: 4 processors per cluster).
//!
//! The §6 evaluation uses 1 processor per cluster, but the machine model
//! supports the real arrangement; these tests exercise the intra-cluster
//! paths — bus supply from a dirty peer, bus ownership transfer, local
//! lock handoff, hierarchical barriers — and the unsolicited sharing
//! writeback that keeps the home consistent when a dirty line is shared
//! inside its cluster.

use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig, RunStats};
use scd_stats::MessageClass::*;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn cfg(clusters: usize, ppc: usize) -> MachineConfig {
    let mut c = MachineConfig::tiny(clusters);
    c.procs_per_cluster = ppc;
    c
}

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

fn addr(block: u64) -> u64 {
    block * 16
}

#[test]
fn dirty_peer_supplies_over_the_bus_with_home_notification() {
    // 2 clusters x 2 procs. Proc 0 (cluster 0) writes block 1 (home 1);
    // proc 1 (same cluster) then reads it: the bus supplies, and the home
    // learns via an unsolicited sharing writeback.
    let stats = run(
        cfg(2, 2),
        vec![
            vec![Op::Write(addr(1)), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Read(addr(1))],
            vec![Op::Barrier(0)],
            vec![Op::Barrier(0)],
        ],
    );
    // Write: WriteReq + WriteReply. Local share: one SharingWriteback to
    // the home, no reply. Barrier: 1 arrive + 1 release (cluster 1).
    assert_eq!(stats.traffic.get(Request), 1 + 1 + 1);
    assert_eq!(stats.traffic.get(Reply), 1 + 1);
    assert_eq!(stats.l2_misses, 2, "write miss + peer read miss");
}

#[test]
fn bus_ownership_transfer_stays_local() {
    // Proc 0 writes, proc 1 (same cluster) writes the same block: the
    // second write is served by a bus transfer; the cluster remains owner
    // and no second home transaction occurs.
    let stats = run(
        cfg(2, 2),
        vec![
            vec![Op::Write(addr(1)), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Write(addr(1))],
            vec![Op::Barrier(0)],
            vec![Op::Barrier(0)],
        ],
    );
    assert_eq!(
        stats.traffic.get(Request),
        1 + 1,
        "one WriteReq + one barrier arrival; the peer write is bus-local"
    );
    assert_eq!(stats.shared_writes, 2);
}

#[test]
fn merged_read_waiters_all_resume() {
    // Both procs of cluster 0 read the same remote block back to back; the
    // second merges into the first's MSHR (one request total).
    let stats = run(
        cfg(2, 2),
        vec![
            vec![Op::Read(addr(1))],
            vec![Op::Read(addr(1))],
            vec![],
            vec![],
        ],
    );
    assert_eq!(stats.shared_reads, 2);
    assert_eq!(
        stats.traffic.get(Request),
        1,
        "second read merges into the outstanding MSHR"
    );
    assert_eq!(stats.traffic.get(Reply), 1);
}

#[test]
fn local_lock_handoff_skips_the_home() {
    // Both procs of cluster 1 contend for a lock homed at cluster 0: one
    // LockReq/LockGrant pair, one UnlockReq at the end — the intermediate
    // handoff is bus-local.
    let script = vec![Op::Lock(0), Op::Compute(10), Op::Unlock(0)];
    let stats = run(
        cfg(2, 2),
        vec![vec![], vec![], script.clone(), script],
    );
    assert_eq!(stats.sync_ops, 4);
    assert_eq!(
        stats.traffic.get(Request),
        2,
        "one LockReq + one UnlockReq; the handoff is local"
    );
    assert_eq!(stats.traffic.get(Reply), 1, "a single grant");
    assert_eq!(stats.lock_metrics.0, 1, "the home grants the cluster once");
}

#[test]
fn hierarchical_barrier_sends_one_arrival_per_cluster() {
    let n_clusters = 3;
    let ppc = 4;
    let scripts: Vec<Vec<Op>> = (0..n_clusters * ppc)
        .map(|_| vec![Op::Compute(5), Op::Barrier(0), Op::Compute(5)])
        .collect();
    let stats = run(cfg(n_clusters, ppc), scripts);
    assert_eq!(stats.sync_ops, (n_clusters * ppc) as u64);
    // Home cluster of barrier 0 is cluster 0: 2 remote arrivals + 2
    // releases.
    assert_eq!(stats.traffic.get(Request), 2);
    assert_eq!(stats.traffic.get(Reply), 2);
}

#[test]
fn dash_prototype_shape_runs_clean() {
    // 4 clusters x 4 processors (a quarter-scale DASH prototype) under
    // randomized load with invariants checked.
    use scd_sim::SimRng;
    let mut root = SimRng::new(99);
    let scripts: Vec<Vec<Op>> = (0..16)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::new();
            for _ in 0..200 {
                let b = rng.below(24);
                if rng.chance(0.35) {
                    ops.push(Op::Write(addr(b)));
                } else {
                    ops.push(Op::Read(addr(b)));
                }
            }
            ops
        })
        .collect();
    for scheme in [
        Scheme::FullVector,
        Scheme::dir_cv(2, 2),
        Scheme::dir_b(2),
        Scheme::dir_nb(2),
    ] {
        let c = cfg(4, 4).with_scheme(scheme);
        let stats = run(c, scripts.clone());
        assert_eq!(stats.shared_refs(), 16 * 200, "{scheme:?}");
    }
}

#[test]
fn four_procs_per_cluster_reduce_network_traffic() {
    // The same 16-processor workload on 16x1 vs 4x4: clustering converts
    // network transactions into bus transactions.
    use scd_sim::SimRng;
    let mut root = SimRng::new(5);
    let scripts: Vec<Vec<Op>> = (0..16)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            (0..150)
                .map(|_| {
                    let b = rng.below(32);
                    if rng.chance(0.3) {
                        Op::Write(addr(b))
                    } else {
                        Op::Read(addr(b))
                    }
                })
                .collect()
        })
        .collect();
    let flat = run(cfg(16, 1), scripts.clone());
    let clustered = run(cfg(4, 4), scripts);
    assert!(
        clustered.traffic.total() < flat.traffic.total(),
        "clustered {} vs flat {}",
        clustered.traffic.total(),
        flat.traffic.total()
    );
}
