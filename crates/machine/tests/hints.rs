//! Replacement hints: silently evicted clean copies may be un-recorded at
//! the home, trading hint messages for invalidation precision.

use scd_machine::{Machine, MachineConfig, RunStats};
use scd_sim::SimRng;
use scd_stats::MessageClass::*;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn addr(block: u64) -> u64 {
    block * 16
}

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

#[test]
fn hint_prevents_stale_invalidations() {
    // Cluster 1 reads block 0, then walks a conflict chain that evicts it
    // (tiny L2: 16 blocks 2-way, so 0, 8, 16 share a set... use 0, 8, 16).
    // Cluster 2 then writes block 0: without hints the stale pointer to 1
    // draws an invalidation; with hints it does not.
    let mk_scripts = || {
        vec![
            vec![Op::Barrier(0)],
            vec![
                Op::Read(addr(0)),
                Op::Read(addr(8)),
                Op::Read(addr(16)),
                Op::Read(addr(24)),
                Op::Read(addr(32)),
                Op::Read(addr(40)),
                Op::Barrier(0),
            ],
            vec![Op::Barrier(0), Op::Write(addr(0))],
        ]
    };
    let mut cfg = MachineConfig::tiny(3);
    cfg.l2_blocks = 4;
    cfg.l2_ways = 2;
    cfg.l1_blocks = 2;
    let without = run(cfg.clone(), mk_scripts());
    cfg.replacement_hints = true;
    let with = run(cfg, mk_scripts());
    assert_eq!(
        without.traffic.get(Invalidation),
        1,
        "stale pointer draws an invalidation without hints"
    );
    assert_eq!(
        with.traffic.get(Invalidation),
        0,
        "the hint un-recorded the evicted sharer"
    );
    assert!(
        with.traffic.get(Request) > without.traffic.get(Request),
        "hints themselves are request-class messages"
    );
}

#[test]
fn hints_stay_coherent_under_stress() {
    for seed in 0..6 {
        let mut root = SimRng::new(0x41B7 + seed);
        let scripts: Vec<Vec<Op>> = (0..8)
            .map(|p| {
                let mut rng = root.fork(p);
                (0..300)
                    .map(|_| {
                        let b = rng.below(48);
                        if rng.chance(0.35) {
                            Op::Write(addr(b))
                        } else {
                            Op::Read(addr(b))
                        }
                    })
                    .collect()
            })
            .collect();
        let mut cfg = MachineConfig::tiny(8);
        cfg.l2_blocks = 8;
        cfg.l2_ways = 2;
        cfg.l1_blocks = 2;
        cfg.replacement_hints = true;
        // tiny() keeps the version oracle + quiescent checker on.
        let stats = run(cfg, scripts);
        assert!(stats.cycles > 0, "seed {seed}");
    }
}

#[test]
fn hints_with_multiprocessor_clusters_respect_peer_copies() {
    // Proc 0 and proc 1 of cluster 0 both hold block 1; proc 0 evicts its
    // copy — no hint must be sent while the peer still holds one (the
    // directory must keep covering the cluster).
    let mut cfg = MachineConfig::tiny(2);
    cfg.procs_per_cluster = 2;
    cfg.l2_blocks = 4;
    cfg.l2_ways = 2;
    cfg.l1_blocks = 2;
    cfg.replacement_hints = true;
    let stats = run(
        cfg,
        vec![
            vec![
                Op::Read(addr(1)),
                Op::Barrier(0),
                // Conflict chain evicts proc 0's copy of block 1.
                Op::Read(addr(9)),
                Op::Read(addr(17)),
                Op::Read(addr(25)),
                Op::Barrier(1),
            ],
            vec![Op::Read(addr(1)), Op::Barrier(0), Op::Barrier(1), Op::Read(addr(1))],
            vec![Op::Barrier(0), Op::Barrier(1)],
            vec![Op::Barrier(0), Op::Barrier(1)],
        ],
    );
    // The final read by proc 1 must still hit its (covered) copy; the
    // quiescent checker verifies the directory still covers cluster 0.
    assert!(stats.cycles > 0);
}
