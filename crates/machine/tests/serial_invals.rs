//! The §3.3 critique of cache-based linked-list (SCI-style) directories,
//! made quantitative: "each write produces a serial string of
//! invalidations in the linked list scheme... In contrast, the memory-
//! based directory scheme can send invalidation messages as fast as the
//! network can accept them."

use scd_machine::{Machine, MachineConfig, RunStats};
use scd_stats::MessageClass::*;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn addr(block: u64) -> u64 {
    block * 16
}

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

/// N-1 clusters read a block, then cluster 1 writes it; returns the stats.
fn wide_share_then_write(n: usize, serial: bool) -> RunStats {
    let mut cfg = MachineConfig::tiny(n);
    cfg.serial_invalidations = serial;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0)]];
    scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0), Op::Write(addr(0))]);
    for _ in 2..n {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    run(cfg, scripts)
}

#[test]
fn serial_mode_sends_the_same_number_of_invalidations() {
    let par = wide_share_then_write(8, false);
    let ser = wide_share_then_write(8, true);
    assert_eq!(
        par.traffic.get(Invalidation),
        ser.traffic.get(Invalidation),
        "same sharers get invalidated either way"
    );
    assert_eq!(
        par.traffic.get(Acknowledgement),
        ser.traffic.get(Acknowledgement)
    );
}

#[test]
fn serial_mode_pays_one_round_trip_per_sharer() {
    // 6 sharers: the parallel scheme overlaps the invalidations; the
    // serial walk pays ~one network round trip each.
    let par = wide_share_then_write(8, false);
    let ser = wide_share_then_write(8, true);
    assert!(
        ser.cycles > par.cycles + 5 * 20,
        "serial {} should exceed parallel {} by ~5 extra round trips",
        ser.cycles,
        par.cycles
    );
}

#[test]
fn serialization_penalty_grows_with_sharer_count() {
    let gap = |n: usize| {
        let par = wide_share_then_write(n, false);
        let ser = wide_share_then_write(n, true);
        ser.cycles as i64 - par.cycles as i64
    };
    let g4 = gap(4);
    let g10 = gap(10);
    assert!(
        g10 > g4 + 4 * 20,
        "gap must grow with sharers: {g4} -> {g10}"
    );
}

#[test]
fn serial_mode_stays_coherent_under_stress() {
    use scd_sim::SimRng;
    for seed in 0..4 {
        let mut root = SimRng::new(0x5C1 + seed);
        let scripts: Vec<Vec<Op>> = (0..8)
            .map(|p| {
                let mut rng = root.fork(p);
                (0..300)
                    .map(|_| {
                        let b = rng.below(16);
                        if rng.chance(0.4) {
                            Op::Write(addr(b))
                        } else {
                            Op::Read(addr(b))
                        }
                    })
                    .collect()
            })
            .collect();
        let mut cfg = MachineConfig::tiny(8);
        cfg.serial_invalidations = true;
        let stats = run(cfg, scripts);
        assert!(stats.cycles > 0, "seed {seed}");
    }
}

#[test]
fn home_cluster_write_also_serializes() {
    // The writer is the home cluster itself (block 0 homes at cluster 0).
    let n = 6;
    let mut cfg = MachineConfig::tiny(n);
    cfg.serial_invalidations = true;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0), Op::Write(addr(0))]];
    for _ in 1..n {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    let stats = run(cfg, scripts);
    assert_eq!(stats.traffic.get(Invalidation), (n - 1) as u64);
    assert_eq!(stats.shared_writes, 1);
}
