//! The quiescent invariant checker's error branches, exercised directly by
//! hand-corrupting machine state (via `scd_machine::machine::testing`) —
//! each corruption is one that only a protocol bug could produce, so no
//! workload can reach these branches honestly.

use scd_machine::checker::verify_quiescent;
use scd_machine::machine::testing;
use scd_machine::{Machine, MachineConfig};
use scd_tango::{ScriptProgram, ThreadProgram};

/// A fresh, never-run 4-cluster machine (quiescent by construction).
fn idle_machine() -> Machine {
    let cfg = MachineConfig::tiny(4);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.processors())
        .map(|_| Box::new(ScriptProgram::new(vec![])) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs)
}

#[test]
fn pristine_machine_verifies() {
    let m = idle_machine();
    assert_eq!(verify_quiescent(&m), Ok(()));
}

#[test]
fn busy_serializer_block_is_reported() {
    let mut m = idle_machine();
    testing::mark_busy(&mut m, 2, 6);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("busy blocks"), "{err}");
    assert!(err.contains("cluster 2"), "{err}");
}

#[test]
fn multiple_dirty_holders_are_reported() {
    let mut m = idle_machine();
    // Block 2's home is cluster 2; clusters 0 and 1 both claim it dirty.
    testing::fill_line(&mut m, 0, 0, 2, true);
    testing::fill_line(&mut m, 1, 0, 2, true);
    testing::force_dirty_entry(&mut m, 2, 2, 0);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("multiple dirty holders"), "{err}");
}

#[test]
fn dirty_copy_without_a_home_entry_is_reported() {
    let mut m = idle_machine();
    // Cluster 0 holds block 1 dirty but its home (cluster 1) lost the entry.
    testing::fill_line(&mut m, 0, 0, 1, true);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("dirty but home 1 has no entry"), "{err}");
}

#[test]
fn dirty_copy_with_a_mismatched_entry_is_reported() {
    let mut m = idle_machine();
    testing::fill_line(&mut m, 0, 0, 1, true);
    // The entry exists but says Shared — a downgrade the owner never saw.
    testing::force_shared_entry(&mut m, 1, 1, &[0]);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("entry says"), "{err}");

    let mut m = idle_machine();
    testing::fill_line(&mut m, 0, 0, 1, true);
    // Dirty, but the recorded owner is a different cluster.
    testing::force_dirty_entry(&mut m, 1, 1, 3);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("entry says"), "{err}");
}

#[test]
fn home_recorded_in_its_own_directory_is_reported() {
    let mut m = idle_machine();
    testing::fill_line(&mut m, 0, 0, 1, false);
    // A precise entry must never cover its own home cluster (1).
    testing::force_shared_entry(&mut m, 1, 1, &[0, 1]);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("recorded in its own directory"), "{err}");
}

#[test]
fn shared_copy_without_a_home_entry_is_reported() {
    let mut m = idle_machine();
    testing::fill_line(&mut m, 0, 0, 1, false);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("holds a copy but home 1 has no entry"), "{err}");
}

#[test]
fn uncovered_sharer_is_reported() {
    let mut m = idle_machine();
    testing::fill_line(&mut m, 0, 0, 1, false);
    testing::fill_line(&mut m, 2, 0, 1, false);
    // The entry only covers cluster 0; cluster 2's copy is untracked.
    testing::force_shared_entry(&mut m, 1, 1, &[0]);
    let err = verify_quiescent(&m).unwrap_err().to_string();
    assert!(err.contains("not covered"), "{err}");
    assert!(err.contains("cluster 2"), "{err}");
}
