//! Protocol-flow tests: each scenario pins down the exact message traffic
//! the DASH protocol description (paper §2) prescribes.
//!
//! Conventions: `MachineConfig::tiny(n)` builds n clusters of 1 processor,
//! 16-byte blocks, uniform 10-cycle network latency, and invariant checking
//! on. Block `b` lives at home cluster `b % n`; byte address = block * 16.

use scd_core::Scheme;
use scd_machine::{Machine, MachineConfig, RunStats};
use scd_stats::MessageClass::*;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn addr(block: u64) -> u64 {
    block * 16
}

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

#[test]
fn local_read_produces_no_traffic() {
    // Cluster 0 reads a block homed at cluster 0.
    let stats = run(
        MachineConfig::tiny(2),
        vec![vec![Op::Read(addr(0))], vec![]],
    );
    assert_eq!(stats.traffic.total(), 0);
    assert_eq!(stats.shared_reads, 1);
    // Local miss latency ~ l2 detect (8) + bus/memory (15) + resume.
    assert!(stats.cycles >= 23 && stats.cycles < 40, "{}", stats.cycles);
}

#[test]
fn remote_clean_read_is_request_plus_reply() {
    // Cluster 1 reads block 0 (home cluster 0).
    let stats = run(
        MachineConfig::tiny(2),
        vec![vec![], vec![Op::Read(addr(0))]],
    );
    assert_eq!(stats.traffic.get(Request), 1);
    assert_eq!(stats.traffic.get(Reply), 1);
    assert_eq!(stats.traffic.coherence(), 0);
    // 2-cluster latency: 8 + 10 + 15 + 10 + 1 = 44 with the uniform model.
    assert!(stats.cycles >= 40 && stats.cycles < 60, "{}", stats.cycles);
}

#[test]
fn repeated_reads_hit_in_cache() {
    let stats = run(
        MachineConfig::tiny(2),
        vec![
            vec![],
            vec![Op::Read(addr(0)), Op::Read(addr(0)), Op::Read(addr(0))],
        ],
    );
    assert_eq!(stats.traffic.get(Request), 1, "only the first read misses");
    assert_eq!(stats.shared_reads, 3);
}

#[test]
fn write_invalidates_remote_sharer() {
    // Block 0 homed at cluster 0 (3 clusters). Clusters 1 and 2 read it,
    // then cluster 1 writes it: one invalidation to cluster 2, one ack back
    // to cluster 1.
    let stats = run(
        MachineConfig::tiny(3),
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0), Op::Write(addr(0))],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
        ],
    );
    assert_eq!(stats.traffic.get(Invalidation), 1);
    assert_eq!(stats.traffic.get(Acknowledgement), 1);
    // Histogram: exactly one write event, with exactly 1 invalidation.
    assert_eq!(stats.invalidations.events(), 1);
    assert_eq!(stats.invalidations.count(1), 1);
}

#[test]
fn write_to_uncached_block_is_a_zero_invalidation_event() {
    let stats = run(
        MachineConfig::tiny(2),
        vec![vec![], vec![Op::Write(addr(0))]],
    );
    assert_eq!(stats.traffic.get(Request), 1);
    assert_eq!(stats.traffic.get(Reply), 1);
    assert_eq!(stats.traffic.coherence(), 0);
    assert_eq!(stats.invalidations.events(), 1);
    assert_eq!(stats.invalidations.count(0), 1);
}

#[test]
fn dirty_remote_read_takes_the_three_cluster_path() {
    // Cluster 1 writes block 0 (home 0); cluster 2 then reads it.
    // Read flow: ReadReq (2->0), FwdRead (0->1), ReadReply (1->2),
    // SharingWriteback (1->0).
    let stats = run(
        MachineConfig::tiny(3),
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Write(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Read(addr(0))],
        ],
    );
    assert_eq!(stats.protocol.forwards, 1);
    // Write: req+reply. Read: 3 requests (ReadReq, FwdRead, SWB) + 1 reply.
    // Barrier: 2 arrivals (c1,c2) + 2 releases.
    assert_eq!(stats.traffic.get(Request), 1 + 3 + 2);
    assert_eq!(stats.traffic.get(Reply), 1 + 1 + 2);
}

#[test]
fn dirty_remote_write_transfers_ownership() {
    // Cluster 1 writes block 0, then cluster 2 writes it.
    // Second write: WriteReq (2->0), FwdWrite (0->1), TransferReply (1->2),
    // OwnershipTransfer (1->0); no invalidations/acks.
    let stats = run(
        MachineConfig::tiny(3),
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Write(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Write(addr(0))],
        ],
    );
    assert_eq!(stats.protocol.forwards, 1);
    assert_eq!(stats.traffic.coherence(), 0);
    // Ownership transfers count as 0-invalidation events.
    assert_eq!(stats.invalidations.events(), 2);
    assert_eq!(stats.invalidations.count(0), 2);
}

#[test]
fn full_vector_write_invalidates_every_sharer_exactly() {
    // 6 clusters; clusters 1..=4 read block 0, cluster 5 writes it.
    let n = 6;
    let mut scripts: Vec<Vec<Op>> = vec![vec![Op::Barrier(0)]];
    for _ in 1..=4 {
        scripts.push(vec![Op::Read(addr(0)), Op::Barrier(0)]);
    }
    scripts.push(vec![Op::Barrier(0), Op::Write(addr(0))]);
    let stats = run(MachineConfig::tiny(n), scripts);
    assert_eq!(stats.traffic.get(Invalidation), 4);
    assert_eq!(stats.traffic.get(Acknowledgement), 4);
    assert_eq!(stats.invalidations.count(4), 1);
}

#[test]
fn broadcast_scheme_overshoots_to_everyone() {
    // Dir1B on 6 clusters: block 0 read by clusters 1,2,3 (overflow at the
    // second sharer), then cluster 1 writes. Broadcast: invalidations to
    // everyone except writer (1) and home (0) = 4 messages, even though
    // only 2 other clusters (2,3) actually share.
    let n = 6;
    let cfg = MachineConfig::tiny(n).with_scheme(Scheme::dir_b(1));
    let stats = run(
        cfg,
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0), Op::Write(addr(0))],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0)],
            vec![Op::Barrier(0)],
        ],
    );
    assert_eq!(stats.traffic.get(Invalidation), 4);
    assert_eq!(stats.traffic.get(Acknowledgement), 4);
    assert_eq!(stats.invalidations.count(4), 1);
}

#[test]
fn coarse_vector_invalidates_regions() {
    // Dir1CV2 on 6 clusters: sharers 2 and 4 (regions {2,3} and {4,5});
    // writer is cluster 1, home 0. Invals go to 2,3,4,5 = 4 messages.
    let cfg = MachineConfig::tiny(6).with_scheme(Scheme::dir_cv(1, 2));
    let stats = run(
        cfg,
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Write(addr(0))],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0)],
        ],
    );
    assert_eq!(stats.traffic.get(Invalidation), 4);
    assert_eq!(stats.invalidations.count(4), 1);
}

#[test]
fn nb_scheme_evicts_a_sharer_on_pointer_overflow() {
    // Dir1NB on 4 clusters: cluster 1 reads block 0, then cluster 2 reads
    // it -> pointer overflow evicts cluster 1 (DirFlush + ack), recorded as
    // a 1-invalidation event.
    let cfg = MachineConfig::tiny(4).with_scheme(Scheme::dir_nb(1));
    let stats = run(
        cfg,
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
            vec![Op::Barrier(0), Op::Read(addr(0))],
            vec![Op::Barrier(0)],
        ],
    );
    assert_eq!(stats.protocol.nb_evictions, 1);
    assert_eq!(stats.traffic.get(Invalidation), 1);
    assert_eq!(stats.traffic.get(Acknowledgement), 1);
    assert_eq!(stats.invalidations.events(), 1);
    assert_eq!(stats.invalidations.count(1), 1);
}

#[test]
fn nb_evicted_sharer_rereads() {
    // After the eviction above, cluster 1 reads again: it misses (its copy
    // was invalidated) and produces a fresh request — the Dir_NB thrashing
    // the paper describes for read-shared data.
    let cfg = MachineConfig::tiny(4).with_scheme(Scheme::dir_nb(1));
    let stats = run(
        cfg,
        vec![
            vec![Op::Barrier(0), Op::Barrier(1)],
            vec![
                Op::Read(addr(0)),
                Op::Barrier(0),
                Op::Barrier(1),
                Op::Read(addr(0)),
            ],
            vec![Op::Barrier(0), Op::Read(addr(0)), Op::Barrier(1)],
            vec![Op::Barrier(0), Op::Barrier(1)],
        ],
    );
    // Three read misses total (1, 2, then 1 again) and two NB evictions
    // (cluster 2's read evicts 1; cluster 1's re-read evicts 2).
    assert_eq!(stats.protocol.nb_evictions, 2);
    assert_eq!(stats.l2_misses, 3);
}

#[test]
fn dirty_eviction_writes_back_and_clears_the_entry() {
    // tiny: L2 = 16 blocks, 2 ways => 8 sets. Blocks 1, 17, 33 all map to
    // set 1 and are homed at cluster 1 (odd blocks, 2 clusters). Cluster 0
    // writes all three: the third fill evicts dirty block 1 -> Writeback.
    let stats = run(
        MachineConfig::tiny(2),
        vec![
            vec![
                Op::Write(addr(1)),
                Op::Write(addr(17)),
                Op::Write(addr(33)),
            ],
            vec![],
        ],
    );
    // 3 write transactions (req+reply each) + 1 writeback request.
    assert_eq!(stats.traffic.get(Request), 4);
    assert_eq!(stats.traffic.get(Reply), 3);
    // The quiescent invariant checker (enabled in tiny()) verifies the
    // directory entry was cleared by the writeback.
}

#[test]
fn self_owned_rerequest_waits_for_its_own_writeback() {
    // Cluster 0 writes block 1 (home 1), evicts it via conflicting writes,
    // then immediately rereads it. The reread's request chases the
    // writeback on the same channel, so it arrives after it — unless the
    // protocol parks it. Either way the run must complete coherently.
    let stats = run(
        MachineConfig::tiny(2),
        vec![
            vec![
                Op::Write(addr(1)),
                Op::Write(addr(17)),
                Op::Write(addr(33)),
                Op::Read(addr(1)),
            ],
            vec![],
        ],
    );
    assert_eq!(stats.shared_reads, 1);
    assert!(stats.cycles > 0);
}

#[test]
fn sparse_replacement_flushes_the_victim() {
    // Sparse directory with 2 entries / 1 way per home. Cluster 1 reads
    // blocks 0, 4, 8 (all homed at 0, all mapping to sparse set 0): the
    // third allocation displaces block 0's entry -> DirFlush to cluster 1
    // + DirFlushAck.
    let cfg = MachineConfig::tiny(2).with_sparse(2, 1, scd_core::Replacement::Lru);
    let stats = run(
        cfg,
        vec![
            vec![],
            vec![Op::Read(addr(0)), Op::Read(addr(4)), Op::Read(addr(8))],
        ],
    );
    assert!(stats.protocol.replacement_flushes >= 1);
    assert!(stats.traffic.get(Invalidation) >= 1);
    assert!(stats.traffic.get(Acknowledgement) >= 1);
    let sp = stats.sparse.expect("sparse stats present");
    assert!(sp.replacements >= 1);
}

#[test]
fn flushed_block_rereads_fresh() {
    let cfg = MachineConfig::tiny(2).with_sparse(2, 1, scd_core::Replacement::Lru);
    let stats = run(
        cfg,
        vec![
            vec![],
            vec![
                Op::Read(addr(0)),
                Op::Read(addr(4)),
                Op::Read(addr(8)),
                Op::Compute(500), // let the flush land
                Op::Read(addr(0)),
            ],
        ],
    );
    // The re-read misses because the flush dropped the copy.
    assert_eq!(stats.l2_misses, 4);
}

#[test]
fn sparse_dirty_victim_flush_retrieves_ownership() {
    // Dirty entries can be displaced too; the flush must reclaim the dirty
    // copy without breaking coherence (checker-enforced).
    let cfg = MachineConfig::tiny(2).with_sparse(2, 1, scd_core::Replacement::Lru);
    let stats = run(
        cfg,
        vec![
            vec![],
            vec![
                Op::Write(addr(0)),
                Op::Write(addr(4)),
                Op::Write(addr(8)),
                Op::Compute(500),
                Op::Read(addr(0)),
            ],
        ],
    );
    assert!(stats.protocol.replacement_flushes >= 1);
    assert_eq!(stats.shared_writes, 3);
}

#[test]
fn locks_are_mutually_exclusive_and_grant_fifo() {
    // Two clusters increment a shared counter under a lock, many times.
    let iters = 10;
    let mut script = Vec::new();
    for _ in 0..iters {
        script.extend([
            Op::Lock(0),
            Op::Read(addr(2)),
            Op::Compute(5),
            Op::Write(addr(2)),
            Op::Unlock(0),
        ]);
    }
    let stats = run(MachineConfig::tiny(2), vec![script.clone(), script]);
    assert_eq!(stats.sync_ops, 2 * 2 * iters);
    assert_eq!(stats.lock_metrics.0, 2 * iters, "every acquire granted once");
    assert_eq!(stats.lock_metrics.1, 0, "full vector never retries");
}

#[test]
fn coarse_vector_locks_retry_by_region() {
    // Dir1CV2 on 4 clusters, 3 contenders: waiter vector overflows into
    // coarse mode, so releases broadcast retries to a region.
    let cfg = MachineConfig::tiny(4).with_scheme(Scheme::dir_cv(1, 2));
    let script = |n: u64| {
        let mut s = Vec::new();
        for _ in 0..n {
            s.extend([Op::Lock(0), Op::Compute(50), Op::Unlock(0)]);
        }
        s
    };
    let stats = run(
        cfg,
        vec![script(5), script(5), script(5), script(5)],
    );
    assert_eq!(stats.sync_ops, 4 * 2 * 5);
    assert!(
        stats.lock_metrics.1 > 0,
        "coarse waiter vectors must cause retries"
    );
}

#[test]
fn barrier_releases_all_clusters() {
    let n = 5;
    let scripts: Vec<Vec<Op>> = (0..n)
        .map(|_| vec![Op::Compute(10), Op::Barrier(0), Op::Compute(10)])
        .collect();
    let stats = run(MachineConfig::tiny(n), scripts);
    assert_eq!(stats.sync_ops, n as u64);
    // n-1 arrivals + n-1 releases cross the network (home cluster local).
    assert_eq!(stats.traffic.get(Request), (n - 1) as u64);
    assert_eq!(stats.traffic.get(Reply), (n - 1) as u64);
}

#[test]
fn runs_are_deterministic() {
    let mk = || {
        let cfg = MachineConfig::tiny(4).with_scheme(Scheme::dir_cv(1, 2));
        let script = |seed: u64| {
            let mut s = Vec::new();
            for i in 0..50 {
                let b = (seed * 31 + i * 7) % 16;
                if i % 3 == 0 {
                    s.push(Op::Write(addr(b)));
                } else {
                    s.push(Op::Read(addr(b)));
                }
            }
            s
        };
        run(cfg, vec![script(1), script(2), script(3), script(4)])
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.invalidations, b.invalidations);
}

#[test]
fn upgrade_write_keeps_line_and_invalidates_peers() {
    // Cluster 1 reads (shared), then writes (upgrade). Cluster 2 shares in
    // between and must be invalidated.
    let stats = run(
        MachineConfig::tiny(3),
        vec![
            vec![Op::Barrier(0)],
            vec![Op::Read(addr(0)), Op::Barrier(0), Op::Write(addr(0)), Op::Read(addr(0))],
            vec![Op::Read(addr(0)), Op::Barrier(0)],
        ],
    );
    // The final read hits the dirty line locally; the upgrade write is an
    // L2 *hit* on a shared line, so only the two initial reads miss.
    assert_eq!(stats.l2_misses, 2);
    assert_eq!(stats.traffic.get(Invalidation), 1);
}
