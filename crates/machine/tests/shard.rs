//! Sharded execution: byte-identity with the serial engine.
//!
//! The contract under test is the tentpole guarantee: for any shard
//! count, a sharded run produces the *same bytes* as the serial engine —
//! stats documents, retained traces, streamed JSONL, metrics — because
//! every event carries a canonical `(cycle, stamp)` rank and the
//! conservative window barrier never lets a cross-shard message arrive
//! inside the window that produced it.

use scd_machine::{Machine, MachineConfig, ShardedMachine, SimError};
use scd_noc::{FaultPlan, LatencyModel};
use scd_sim::SimRng;
use scd_tango::{Op, ScriptProgram, ThreadProgram};
use scd_trace::{BufferSink, Json, TraceConfig};

fn programs(scripts: &[Vec<Op>]) -> Vec<Box<dyn ThreadProgram>> {
    scripts
        .iter()
        .map(|ops| Box::new(ScriptProgram::new(ops.clone())) as Box<dyn ThreadProgram>)
        .collect()
}

/// A mixed workload: random reads/writes over a small block set with a
/// lock-protected phase and barriers, enough cross-cluster traffic to
/// exercise every boundary path.
fn mixed_scripts(procs: usize, blocks: u64, seed: u64) -> Vec<Vec<Op>> {
    let mut root = SimRng::new(seed);
    (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::new();
            for _ in 0..120 {
                let b = rng.below(blocks) * 16;
                if rng.chance(0.3) {
                    ops.push(Op::Write(b));
                } else {
                    ops.push(Op::Read(b));
                }
                if rng.chance(0.05) {
                    ops.push(Op::Compute(7));
                }
            }
            ops.push(Op::Lock(1));
            ops.push(Op::Write(rng.below(blocks) * 16));
            ops.push(Op::Unlock(1));
            ops.push(Op::Barrier(0));
            ops.push(Op::Read(rng.below(blocks) * 16));
            ops
        })
        .collect()
}

fn full_trace() -> TraceConfig {
    let mut tc = TraceConfig::none();
    tc.ring_capacity = 4096;
    tc.messages = true;
    tc.metrics = true;
    tc.interval = 500;
    tc.attribution = true;
    tc
}

/// Renders the full stats document plus the retained trace for one run.
fn run_sharded(cfg: &MachineConfig, scripts: &[Vec<Op>], shards: usize) -> (String, String) {
    let mut m = ShardedMachine::new(cfg.clone(), programs(scripts), shards).unwrap();
    let stats = m.run();
    let doc = stats.to_json_document(
        None,
        Some(m.metrics()),
        m.attribution_json(stats.cycles),
        m.trace_json(),
        m.occupancy_json(),
    );
    let trace: Vec<String> = m
        .trace_events()
        .iter()
        .map(|e| e.to_json().to_string())
        .collect();
    (doc.to_string(), trace.join("\n"))
}

#[test]
fn stats_and_traces_are_byte_identical_across_shard_counts() {
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(full_trace());
    let scripts = mixed_scripts(6, 24, 0xD15C);
    let (doc1, trace1) = run_sharded(&cfg, &scripts, 1);
    for shards in [2, 3, 4, 6] {
        let (doc_n, trace_n) = run_sharded(&cfg, &scripts, shards);
        assert_eq!(doc1, doc_n, "stats document diverged at {shards} shards");
        assert_eq!(trace1, trace_n, "trace diverged at {shards} shards");
    }
}

#[test]
fn mesh_latency_model_is_shard_invariant_too() {
    let mut cfg = MachineConfig::tiny(8);
    cfg.latency = LatencyModel::Mesh {
        fixed: 13,
        per_hop: 1,
    };
    cfg.trace = Some(full_trace());
    let scripts = mixed_scripts(8, 32, 0xBEEF);
    let (doc1, trace1) = run_sharded(&cfg, &scripts, 1);
    let (doc4, trace4) = run_sharded(&cfg, &scripts, 4);
    assert_eq!(doc1, doc4);
    assert_eq!(trace1, trace4);
}

#[test]
fn solo_machine_and_one_shard_agree() {
    // `--shards 1` must be the serial engine, not merely equivalent to it.
    let mut cfg = MachineConfig::tiny(4);
    cfg.trace = Some(full_trace());
    let scripts = mixed_scripts(4, 16, 0xA11CE);
    let serial = Machine::new(cfg.clone(), programs(&scripts)).run();
    let (doc1, _) = run_sharded(&cfg, &scripts, 1);
    let serial_doc = {
        let mut m = Machine::new(cfg.clone(), programs(&scripts));
        let stats = m.run();
        assert_eq!(stats.cycles, serial.cycles);
        stats
            .to_json_document(
                None,
                Some(m.metrics()),
                m.attribution_json(stats.cycles),
                m.trace_json(),
                m.occupancy_json(),
            )
            .to_string()
    };
    assert_eq!(serial_doc, doc1);
}

#[test]
fn streamed_jsonl_is_byte_identical_across_shard_counts() {
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(full_trace());
    let scripts = mixed_scripts(6, 24, 0x57A3);
    let stream_of = |shards: usize| -> Vec<String> {
        let mut m = ShardedMachine::new(cfg.clone(), programs(&scripts), shards).unwrap();
        let sink = BufferSink::new();
        let lines = sink.handle();
        m.attach_stream(
            Box::new(sink),
            Some(Json::obj().with("app", Json::Str("shard-test".into()))),
        );
        m.run();
        let got = lines.lock().unwrap().clone();
        got
    };
    let serial = stream_of(1);
    assert!(serial.len() > 3, "stream should carry real content");
    for shards in [2, 3, 6] {
        assert_eq!(serial, stream_of(shards), "stream diverged at {shards} shards");
    }
}

#[test]
fn fault_injection_is_shard_invariant() {
    // Fault draws come from per-channel streams (seeded by src/dst), so
    // NACK/duplicate/delay placement — and therefore every counter — is
    // independent of the shard partition.
    let mut cfg = MachineConfig::tiny(6);
    cfg.fault_plan = Some(FaultPlan {
        nack_prob: 0.05,
        dup_prob: 0.03,
        delay_prob: 0.05,
        delay_cycles: 9,
        reorder_prob: 0.05,
        reorder_window: 6,
    });
    let scripts = mixed_scripts(6, 24, 0xFA17);
    let run = |shards: usize| {
        ShardedMachine::new(cfg.clone(), programs(&scripts), shards)
            .unwrap()
            .run()
    };
    let serial = run(1);
    assert!(
        serial.faults.nacks + serial.faults.duplicates + serial.faults.delay_spikes > 0,
        "faults should actually fire"
    );
    for shards in [2, 3] {
        let sharded = run(shards);
        assert_eq!(
            serial.to_json().to_string(),
            sharded.to_json().to_string(),
            "fault-injected stats diverged at {shards} shards"
        );
    }
}

#[test]
fn shard_count_is_validated() {
    let cfg = MachineConfig::tiny(4);
    let mk = |cfg: &MachineConfig, shards| {
        ShardedMachine::new(cfg.clone(), programs(&mixed_scripts(4, 8, 1)), shards)
    };
    assert!(mk(&cfg, 0).is_err());
    assert!(mk(&cfg, 5).is_err(), "more shards than clusters");
    assert_eq!(mk(&cfg, 4).unwrap().shard_count(), 4);

    let mut zero_lookahead = cfg.clone();
    zero_lookahead.latency = LatencyModel::Uniform { latency: 0 };
    assert!(mk(&zero_lookahead, 2).is_err());
    assert!(mk(&zero_lookahead, 1).is_ok(), "solo needs no lookahead");

    let mut contended = cfg.clone();
    contended.link_occupancy = Some(1);
    contended.latency = LatencyModel::Mesh {
        fixed: 13,
        per_hop: 1,
    };
    assert!(mk(&contended, 2).is_err(), "link contention is global");

    let mut patterns = cfg.clone();
    let mut tc = full_trace();
    tc.patterns = true;
    patterns.trace = Some(tc);
    assert!(mk(&patterns, 2).is_err(), "observatory reads remote state");
}

#[test]
fn deadlock_post_mortem_names_the_stalled_shard() {
    // Proc 3 waits at a barrier nobody else reaches: the queues drain
    // with a processor still blocked, and the failure names the shard
    // owning it.
    let cfg = MachineConfig::tiny(4);
    let mut scripts = vec![vec![Op::Read(16)]; 4];
    scripts[3] = vec![Op::Barrier(7)];
    let mut m = ShardedMachine::new(cfg, programs(&scripts), 2).unwrap();
    match m.try_run() {
        Err(SimError::Deadlock(pm)) => {
            assert!(
                pm.detail.contains("shard 1 (clusters 2..4)"),
                "post-mortem should name the stalled shard: {}",
                pm.detail
            );
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

#[test]
fn watchdog_fires_globally_and_names_the_laggard() {
    // An infinite lock convoy: proc 0 takes the lock and never releases;
    // proc 3 retries forever. No operation retires, so the coordinator's
    // barrier-level watchdog must fire (worker-local checks are disabled
    // because one shard legitimately idles while another works).
    let mut cfg = MachineConfig::tiny(4);
    cfg.watchdog_cycles = 2_000;
    let mut scripts = vec![Vec::new(); 4];
    scripts[0] = vec![Op::Lock(0), Op::Read(16)];
    scripts[3] = vec![Op::Lock(0), Op::Unlock(0)];
    let mut m = ShardedMachine::new(cfg, programs(&scripts), 2).unwrap();
    match m.try_run() {
        Err(SimError::LivelockWatchdog(pm)) => {
            assert!(
                pm.detail.contains("shard"),
                "watchdog detail should locate a shard: {}",
                pm.detail
            );
        }
        Err(SimError::Deadlock(_)) => {
            // Acceptable alternative: lock waiters park rather than spin,
            // so the queue drains instead of livelocking. Either way the
            // run must not hang or succeed.
        }
        other => panic!("expected watchdog or deadlock, got {other:?}"),
    }
}

#[test]
fn uneven_partitions_cover_every_cluster() {
    // 5 clusters over 2 and 3 shards: contiguous, disjoint, exhaustive.
    let mut cfg = MachineConfig::tiny(5);
    cfg.trace = Some(full_trace());
    let scripts = mixed_scripts(5, 20, 0x0DD);
    let (doc1, trace1) = run_sharded(&cfg, &scripts, 1);
    for shards in [2, 3, 5] {
        let (doc_n, trace_n) = run_sharded(&cfg, &scripts, shards);
        assert_eq!(doc1, doc_n, "uneven split diverged at {shards} shards");
        assert_eq!(trace1, trace_n);
    }
}
