//! Link-contention model: messages queue behind each other on mesh links.
//! The protocol must stay coherent even though contention breaks the
//! FIFO/triangle-inequality delivery guarantees the latency-only model
//! provides (poisoned reads and writeback-flag deferral cover the
//! reordered cases).

use scd_machine::{Machine, MachineConfig, RunStats};
use scd_noc::LatencyModel;
use scd_sim::SimRng;
use scd_tango::{Op, ScriptProgram, ThreadProgram};

fn run(cfg: MachineConfig, scripts: Vec<Vec<Op>>) -> RunStats {
    let programs: Vec<Box<dyn ThreadProgram>> = scripts
        .into_iter()
        .map(|ops| Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>)
        .collect();
    Machine::new(cfg, programs).run()
}

fn random_scripts(procs: usize, blocks: u64, wr: f64, seed: u64) -> Vec<Vec<Op>> {
    let mut root = SimRng::new(seed);
    (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            (0..300)
                .map(|_| {
                    let b = rng.below(blocks) * 16;
                    if rng.chance(wr) {
                        Op::Write(b)
                    } else {
                        Op::Read(b)
                    }
                })
                .collect()
        })
        .collect()
}

fn mesh_cfg(clusters: usize, occupancy: Option<u64>) -> MachineConfig {
    let mut cfg = MachineConfig::tiny(clusters);
    cfg.latency = LatencyModel::Mesh {
        fixed: 13,
        per_hop: 1,
    };
    cfg.link_occupancy = occupancy;
    cfg
}

#[test]
fn contention_slows_execution_and_is_accounted() {
    let scripts = random_scripts(8, 16, 0.4, 0xC0);
    let free = run(mesh_cfg(8, None), scripts.clone());
    let congested = run(mesh_cfg(8, Some(8)), scripts);
    assert!(congested.cycles > free.cycles, "queuing must cost time");
    // Message counts shift only marginally (timing perturbs evictions and
    // upgrade-vs-miss classification, not the reference stream).
    assert_eq!(congested.shared_refs(), free.shared_refs());
    let (a, b) = (congested.traffic.total() as f64, free.traffic.total() as f64);
    assert!((a - b).abs() < 0.1 * b, "traffic roughly unchanged: {a} vs {b}");
    assert!(congested.network.contention_cycles > 0);
    assert_eq!(free.network.contention_cycles, 0);
}

#[test]
fn coherence_survives_reordering_under_heavy_contention() {
    // tiny() keeps the version oracle + quiescent checker on: any stale
    // copy resurrected by a reordered reply/invalidation pair panics.
    for seed in 0..8 {
        let scripts = random_scripts(8, 12, 0.5, 0xDEAD + seed);
        let stats = run(mesh_cfg(8, Some(16)), scripts);
        assert!(stats.cycles > 0, "seed {seed}");
    }
}

#[test]
fn contention_amplifies_broadcast_penalty() {
    // The paper: "In a real DASH system ... we consequently expect the
    // performance degradation due to an increased number of messages to be
    // larger than shown here." Broadcast's extra invalidations should cost
    // more time under contention than under the latency-only model.
    use scd_core::Scheme;
    let mk = |scheme, occ| {
        let mut cfg = mesh_cfg(8, occ).with_scheme(scheme);
        cfg.l2_blocks = 64; // keep capacity effects out of the comparison
        cfg.l2_ways = 4;
        cfg.l1_blocks = 16;
        cfg
    };
    // Partially shared blocks (4 of 8 clusters each), repeatedly written:
    // Dir1B overshoots to broadcast where the full vector hits the true
    // sharers, so B sends ~2x the invalidations.
    let mut scripts: Vec<Vec<Op>> = Vec::new();
    for p in 0..8usize {
        let mut ops = Vec::new();
        for round in 0..30u64 {
            for b in 0..8u64 {
                let share = (b % 4) as usize;
                if p % 4 == share || p % 4 == (share + 1) % 4 {
                    ops.push(Op::Read(b * 16));
                }
            }
            if p == 0 {
                ops.push(Op::Write((round % 8) * 16));
            }
            ops.push(Op::Barrier((round % 2) as u32));
        }
        scripts.push(ops);
    }
    let full_free = run(mk(Scheme::FullVector, None), scripts.clone());
    let b_free = run(mk(Scheme::dir_b(1), None), scripts.clone());
    let full_cong = run(mk(Scheme::FullVector, Some(12)), scripts.clone());
    let b_cong = run(mk(Scheme::dir_b(1), Some(12)), scripts);
    let penalty_free = b_free.cycles as f64 / full_free.cycles as f64;
    let penalty_cong = b_cong.cycles as f64 / full_cong.cycles as f64;
    assert!(
        penalty_cong > penalty_free,
        "broadcast penalty should grow under contention: {penalty_free:.3} -> {penalty_cong:.3}"
    );
}
