//! The litmus corpus under sharded execution: every (litmus, scenario)
//! pair must produce byte-identical statistics and traces whether the
//! 2–3-cluster machine runs serially or partitioned one cluster per
//! worker thread.

use scd_check::{corpus, scenarios};
use scd_noc::FaultPlan;

#[test]
fn litmus_corpus_is_shard_invariant() {
    for l in corpus() {
        for sc in scenarios() {
            let serial = {
                let mut m = l.build(&sc, None, true);
                let stats = m.try_run().unwrap_or_else(|e| {
                    panic!("{} under {} (serial): {e}", l.name, sc.label)
                });
                let trace: Vec<String> = m
                    .trace_events()
                    .iter()
                    .map(|e| e.to_json().to_string())
                    .collect();
                (stats.to_json().to_string(), trace.join("\n"))
            };
            for shards in 2..=l.clusters {
                let mut m = l
                    .build_sharded(&sc, true, shards)
                    .unwrap_or_else(|e| panic!("{} under {}: {e}", l.name, sc.label));
                let stats = m.try_run().unwrap_or_else(|e| {
                    panic!("{} under {} ({shards} shards): {e}", l.name, sc.label)
                });
                let trace: Vec<String> = m
                    .trace_events()
                    .iter()
                    .map(|e| e.to_json().to_string())
                    .collect();
                assert_eq!(
                    serial,
                    (stats.to_json().to_string(), trace.join("\n")),
                    "{} under {} diverged at {shards} shards",
                    l.name,
                    sc.label
                );
            }
        }
    }
}

/// The corpus again, but with the fault injector live on every channel:
/// per-channel RNG streams make NACK/duplicate/delay placement a function
/// of (seed, src, dst), never of the shard partition.
#[test]
fn faulted_litmus_runs_are_shard_invariant() {
    let plan = FaultPlan {
        nack_prob: 0.1,
        dup_prob: 0.05,
        delay_prob: 0.1,
        delay_cycles: 7,
        reorder_prob: 0.05,
        reorder_window: 5,
    };
    for l in corpus() {
        for sc in scenarios() {
            let run = |shards: usize| {
                let mut cfg = l.config(&sc, false);
                cfg.fault_plan = Some(plan);
                let mut m =
                    scd_machine::ShardedMachine::new(cfg, l.boxed_programs(), shards)
                        .unwrap_or_else(|e| panic!("{} under {}: {e}", l.name, sc.label));
                m.try_run()
                    .unwrap_or_else(|e| {
                        panic!("{} under {} ({shards} shards): {e}", l.name, sc.label)
                    })
                    .to_json()
                    .to_string()
            };
            assert_eq!(
                run(1),
                run(2),
                "{} under {} diverged with faults at 2 shards",
                l.name,
                sc.label
            );
        }
    }
}
