//! End-to-end gates for the model checker: the full litmus corpus must
//! explore clean, an armed protocol bug must be caught with a replayable
//! counterexample, and the simulator's random nondeterminism must stay
//! inside the exhaustively explored state space.

use scd_check::{
    corpus, explore, minimize, random_walk, replay_trace, scenarios, ExploreConfig,
};
use scd_machine::{FaultEdges, Mutation};

/// The exploration config a litmus test asks for (its own fault edges and
/// budget, default bounds).
fn cfg_for(l: &scd_check::Litmus) -> ExploreConfig {
    ExploreConfig {
        faults: l.faults,
        fault_budget: l.fault_budget,
        ..ExploreConfig::default()
    }
}

/// Every litmus × scenario pair explores exhaustively with zero
/// violations and without hitting the depth or state bounds. This is the
/// CI gate: any protocol change that breaks an invariant in any reachable
/// interleaving of any scheme/organization fails here.
#[test]
fn full_corpus_explores_clean_and_untruncated() {
    for l in corpus() {
        let cfg = cfg_for(&l);
        for sc in scenarios() {
            let out = explore(&|| l.build(&sc, None, false), &cfg);
            assert!(
                out.violation.is_none(),
                "{} under {}: {}",
                l.name,
                sc.label,
                out.violation.unwrap().error
            );
            assert!(!out.truncated, "{} under {} truncated", l.name, sc.label);
            assert!(out.visited > 0 && out.leaves > 0);
        }
    }
}

/// An armed skip-invalidation bug must be caught, the counterexample must
/// minimize to a path no longer than the original, and the replay must
/// produce standard `scd-trace` JSONL that the validator accepts.
#[test]
fn skip_inval_mutation_is_caught_with_replayable_counterexample() {
    let l = corpus()
        .into_iter()
        .find(|l| l.name == "message-passing")
        .unwrap();
    let sc = scenarios()
        .into_iter()
        .find(|s| s.label == "dense/complete")
        .unwrap();
    let cfg = cfg_for(&l);
    let build = || l.build(&sc, Some(Mutation::SkipInval), false);

    let out = explore(&build, &cfg);
    let found = out
        .violation
        .expect("skip-inval must violate coherence under message-passing");
    assert!(
        found.error.contains("block"),
        "violation must name the offending block: {}",
        found.error
    );

    let min = minimize(&build, &cfg, found.choices.len())
        .expect("a violation found at depth d must also be found by depth-d search");
    assert!(min.choices.len() <= found.choices.len());

    // The replay describes every choice; a step-level failure (panic or
    // simulation error) appends one extra "=>" line, while a violation the
    // explorer caught *between* steps replays through all choices cleanly.
    let traced = || l.build(&sc, Some(Mutation::SkipInval), true);
    let (jsonl, steps) = replay_trace(&traced, &cfg, &min.choices);
    assert!(steps.len() >= min.choices.len());
    let summary = scd_trace::validate_trace(&jsonl)
        .expect("counterexample trace must be valid scd-trace JSONL");
    assert!(summary.events > 0);
}

/// The unmutated protocol survives the same exploration the mutation
/// fails — the mutation test above is meaningful only if this holds.
#[test]
fn unmutated_message_passing_explores_clean() {
    let l = corpus()
        .into_iter()
        .find(|l| l.name == "message-passing")
        .unwrap();
    let sc = scenarios()
        .into_iter()
        .find(|s| s.label == "dense/complete")
        .unwrap();
    let out = explore(&|| l.build(&sc, None, false), &cfg_for(&l));
    assert!(out.violation.is_none());
}

/// Fixed-seed random walks — the same nondeterminism a fault-plan
/// simulation run draws on — must only visit states the exhaustive
/// search also reached: the simulator's behaviors are a subset of the
/// model checker's.
#[test]
fn random_walks_stay_inside_the_exhaustive_state_space() {
    for l in corpus() {
        let cfg = cfg_for(&l);
        let sc = scenarios()
            .into_iter()
            .find(|s| s.label == "dense/complete")
            .unwrap();
        let build = || l.build(&sc, None, false);
        let exhaustive = explore(&build, &cfg);
        assert!(exhaustive.violation.is_none());
        for seed in [1u64, 7, 42] {
            let walk = random_walk(&build, &cfg, seed, 4096);
            assert!(
                walk.violation.is_none(),
                "{} walk seed {seed}: {}",
                l.name,
                walk.violation.unwrap().error
            );
            for (i, d) in walk.digests.iter().enumerate() {
                assert!(
                    exhaustive.digests.contains(d),
                    "{} walk seed {seed} step {i}: state not reached by DFS",
                    l.name
                );
            }
        }
    }
}

/// Adversarial NACK placement must not livelock: every path through the
/// nack-retry litmus reaches a drained leaf within the depth bound, for
/// every scheme and organization.
#[test]
fn nack_retry_probe_terminates_everywhere() {
    let l = corpus()
        .into_iter()
        .find(|l| l.name == "nack-retry-livelock")
        .unwrap();
    let cfg = cfg_for(&l);
    assert!(cfg.faults.nack && cfg.fault_budget >= 2);
    for sc in scenarios() {
        let out = explore(&|| l.build(&sc, None, false), &cfg);
        assert!(out.violation.is_none(), "{}: {}", sc.label, out.violation.unwrap().error);
        assert!(!out.truncated, "{}: retry path exceeded depth bound", sc.label);
        assert!(out.leaves > 0);
    }
}

/// Fault edges genuinely branch the search: with NACKs allowed the
/// store-buffering exploration visits strictly more states than without.
#[test]
fn fault_edges_expand_the_state_space() {
    let l = corpus()
        .into_iter()
        .find(|l| l.name == "store-buffering")
        .unwrap();
    let sc = scenarios()
        .into_iter()
        .find(|s| s.label == "dense/complete")
        .unwrap();
    let build = || l.build(&sc, None, false);
    let quiet = explore(&build, &ExploreConfig::default());
    let faulty = explore(
        &build,
        &ExploreConfig {
            faults: FaultEdges {
                nack: true,
                delay: Some(7),
                dup: None,
            },
            fault_budget: 2,
            ..ExploreConfig::default()
        },
    );
    assert!(quiet.violation.is_none() && faulty.violation.is_none());
    assert!(
        faulty.visited > quiet.visited,
        "fault edges added no states ({} vs {})",
        faulty.visited,
        quiet.visited
    );
}
