//! # scd-check — exhaustive small-config model checking
//!
//! Where the rest of the workspace *simulates* the DASH-style coherence
//! protocol along one interleaving per seed, this crate *model-checks* it:
//! for machine configurations small enough to enumerate (2–3 processors,
//! a handful of blocks), it explores **every** reachable interleaving of
//! protocol events — and, optionally, every placement of a bounded number
//! of injected faults (NACKs, delays, duplicated requests) — asserting the
//! coherence invariants at each reached state.
//!
//! Built from three pieces:
//!
//! * a [`litmus`] corpus: tiny adversarial workloads (store buffering,
//!   message passing, an invalidation/replacement race, sparse-directory
//!   eviction during a fan-out, a NACK/retry livelock probe, a broadcast
//!   overflow transition), each instantiated across every directory scheme
//!   and organization;
//! * an [`explorer`]: depth-first search over the machine's exploration
//!   API (`scd_machine::machine::explore`) with canonical state-digest
//!   deduplication, a fault budget, random-walk cross-checking, and
//!   iterative-deepening counterexample minimization;
//! * counterexample emission: a violating choice sequence is replayed on a
//!   trace-enabled machine and dumped as standard `scd-trace` JSONL, so
//!   `scd-validate` and the Perfetto exporter consume it unchanged.
//!
//! The `scd-check` binary (in the workspace root crate) fronts all of
//! this for CI; the pieces are libraries so integration tests can gate on
//! them directly.

#![warn(missing_docs)]

pub mod explorer;
pub mod litmus;

pub use explorer::{
    explore, minimize, random_walk, replay_trace, Counterexample, ExploreConfig, Outcome,
    WalkOutcome,
};
pub use litmus::{corpus, scenarios, Litmus, Scenario};
