//! The litmus corpus: tiny adversarial workloads, each designed to drive
//! the protocol through one hazardous region, instantiated across every
//! directory scheme × organization combination.
//!
//! Every test is small enough for exhaustive interleaving exploration:
//! 2–3 single-processor clusters touching a handful of blocks. Addresses
//! are chosen against the `MachineConfig::tiny` geometry (16-byte blocks,
//! 4-block direct-mapped L1, 16-block 2-way L2 — so blocks congruent
//! mod 4 collide in L1 and mod 8 in L2; homes interleave block mod
//! clusters).

use scd_core::{Organization, Replacement, Scheme};
use scd_machine::machine::explore::{FaultEdges, Mutation};
use scd_machine::{Machine, MachineConfig, ProtocolKind};
use scd_tango::{Op, ScriptProgram, ThreadProgram};
use scd_trace::TraceConfig;

/// One litmus test: named programs plus the fault edges it wants explored.
#[derive(Clone, Debug)]
pub struct Litmus {
    /// Corpus-unique name (CLI `--litmus` selector).
    pub name: &'static str,
    /// One-line description of the hazard it probes.
    pub summary: &'static str,
    /// Cluster count (one processor each).
    pub clusters: usize,
    /// Per-processor op streams.
    pub programs: Vec<Vec<Op>>,
    /// Fault edges to enumerate while exploring this test.
    pub faults: FaultEdges,
    /// Maximum injected faults along any one explored path.
    pub fault_budget: u32,
}

/// One machine configuration a litmus test is instantiated against: a
/// coherence protocol, and (for the directory-based DASH backend) a
/// directory scheme × organization pair.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display label, e.g. `dense/complete` or `tardis`.
    pub label: String,
    /// Coherence protocol backend.
    pub protocol: ProtocolKind,
    /// Directory entry format (ignored by the directoryless backends).
    pub scheme: Scheme,
    /// Directory organization (ignored by the directoryless backends).
    pub organization: Organization,
}

/// Byte address of block `b` under the 16-byte-block tiny geometry.
fn a(b: u64) -> u64 {
    b * 16
}

/// The full litmus corpus.
///
/// Two structural rules make these effective:
///
/// * **Neutral homes.** A copy held *by* a block's home cluster is
///   bus-tracked, not directory-tracked, so writes that should exercise
///   the directory fan-out use blocks homed away from the sharers.
/// * **Staged timing.** Latencies are deterministic; the explorer's
///   nondeterminism is same-cycle ordering plus fault edges. `Compute`
///   paddings place the hazardous operations in each other's windows
///   (a write landing while sharers hold copies, an invalidation landing
///   around an eviction) instead of trivially before or after them.
pub fn corpus() -> Vec<Litmus> {
    use Op::{Compute, Read, Write};
    vec![
        Litmus {
            name: "store-buffering",
            summary: "two clusters write each other's block then read back (SB)",
            clusters: 2,
            // x = block 0 (home 0), y = block 1 (home 1). The delay edge
            // lets either write's request slip past the other cluster's
            // read, covering the orders fixed latencies would pin down.
            programs: vec![
                vec![Write(a(0)), Read(a(1))],
                vec![Write(a(1)), Read(a(0))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: Some(7),
                dup: None,
            },
            fault_budget: 1,
        },
        Litmus {
            name: "message-passing",
            summary: "writer publishes data then flag; reader polls flag then data (MP)",
            clusters: 3,
            // data = block 2, flag = block 5 — both homed at otherwise-idle
            // cluster 2, so every copy the writer must invalidate is
            // directory-tracked. The reader's first poll caches the stale
            // flag before the writer's fan-out reaches it.
            programs: vec![
                vec![Write(a(2)), Write(a(5))],
                vec![Read(a(5)), Read(a(2)), Read(a(5))],
                vec![],
            ],
            faults: FaultEdges::none(),
            fault_budget: 0,
        },
        Litmus {
            name: "inval-replacement-race",
            summary: "invalidation crosses a silent conflict-miss eviction of the same line",
            clusters: 2,
            // Blocks 0, 8, 16 collide in L1 (mod 4) and L2 (mod 8), all
            // homed at cluster 0. Cluster 1 fills block 0 (remote sharer)
            // then silently evicts it by touching the conflicting blocks;
            // cluster 0's staged writes land in that window, so the
            // invalidation can cross the eviction in flight.
            programs: vec![
                vec![Compute(90), Write(a(0)), Write(a(0))],
                vec![Read(a(0)), Read(a(8)), Read(a(16))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: Some(11),
                dup: None,
            },
            fault_budget: 1,
        },
        Litmus {
            name: "sparse-eviction-during-fanout",
            summary: "sparse directory entry evicted while its block is mid-write-fanout",
            clusters: 3,
            // Blocks 0, 3, 6 share home cluster 0 (mod 3) and, under the
            // sparse scenarios, compete for the same tiny directory set.
            // Cluster 2 becomes a remote sharer of block 0; cluster 1's
            // staged write fans out an invalidation right as cluster 0's
            // reads of blocks 3 and 6 displace block 0's directory entry.
            programs: vec![
                vec![Compute(80), Read(a(3)), Read(a(6))],
                vec![Compute(60), Write(a(0))],
                vec![Read(a(0))],
            ],
            faults: FaultEdges::none(),
            fault_budget: 0,
        },
        Litmus {
            name: "nack-retry-livelock",
            summary: "two writers race on one block under adversarial NACK placement",
            clusters: 2,
            // Block 1 is homed at cluster 1, so cluster 0's writes go
            // remote; NACK fault edges force backoff/retry at the worst
            // moments. A livelock shows up as an unexpectedly unbounded
            // path / deadlocked leaf.
            programs: vec![
                vec![Write(a(1)), Read(a(1))],
                vec![Write(a(1))],
            ],
            faults: FaultEdges {
                nack: true,
                delay: None,
                dup: None,
            },
            fault_budget: 2,
        },
        Litmus {
            name: "broadcast-overflow",
            summary: "limited-pointer entry overflows to broadcast/coarse mode mid-race",
            clusters: 3,
            // Block 1 is homed at cluster 1. Clusters 0 and 2 read it
            // first (two remote sharers overflow any 1-pointer entry);
            // the home's staged write then fans out through whatever
            // overflowed representation resulted — it must reach every
            // sharer. The duplicate edge re-sends a read request so
            // at-most-once directory recording is exercised too.
            programs: vec![
                vec![Read(a(1))],
                vec![Compute(150), Write(a(1))],
                vec![Read(a(1)), Read(a(1))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: None,
                dup: Some(9),
            },
            fault_budget: 1,
        },
        Litmus {
            name: "lease-expiry-stale-read",
            summary: "reader's Tardis lease must expire before a second write's version",
            clusters: 2,
            // Block 1 is homed at cluster 1; cluster 1 reads its own
            // block so the lease and the timestamp line live on the same
            // node. The second write must jump `wts` past the granted
            // read horizon — a write that merely increments it
            // (`tardis-skip-wts-bump`) leaves the reader's lease live
            // over the superseded version, and the barrier-synced `pts`
            // then lets the stale copy satisfy the final read.
            programs: vec![
                vec![
                    Write(a(1)),
                    Op::Barrier(0),
                    Compute(5),
                    Write(a(1)),
                    Op::Barrier(1),
                ],
                vec![Op::Barrier(0), Read(a(1)), Op::Barrier(1), Read(a(1))],
            ],
            faults: FaultEdges::none(),
            fault_budget: 0,
        },
        Litmus {
            name: "renew-write-race",
            summary: "lease renewals race a writer bumping the block's timestamps",
            clusters: 2,
            // Cluster 1 leases blocks 0 and 1 early (low `pts`), then
            // cluster 0's barrier-separated re-writes of block 1 ratchet
            // `wts` — and, via the barrier-release piggyback, cluster
            // 1's `pts` — past the early lease horizons. The phase-3
            // re-read of block 1 renews against a bumped `wts` and must
            // decline into a refetch; the final re-read of block 0
            // renews against an unchanged `wts` and succeeds — racing
            // cluster 0's (compute-delayed) closing write of the same
            // block, which the delay edge can push to either side.
            programs: vec![
                vec![
                    Write(a(0)),
                    Op::Barrier(0),
                    Write(a(1)),
                    Op::Barrier(1),
                    Write(a(1)),
                    Op::Barrier(2),
                    Write(a(1)),
                    Op::Barrier(3),
                    Compute(30),
                    Write(a(0)),
                ],
                vec![
                    Op::Barrier(0),
                    Read(a(0)),
                    Read(a(1)),
                    Op::Barrier(1),
                    Read(a(1)),
                    Op::Barrier(2),
                    Read(a(1)),
                    Op::Barrier(3),
                    Read(a(0)),
                    Read(a(1)),
                ],
            ],
            faults: FaultEdges {
                nack: false,
                delay: Some(7),
                dup: None,
            },
            fault_budget: 1,
        },
        Litmus {
            name: "write-after-shared-llc-hit",
            summary: "remote DLS write must invalidate the home's own cached copy",
            clusters: 2,
            // Block 0 is homed at cluster 0, which caches it early (a
            // home-local hit under DLS). Cluster 1's remote write lands
            // at the LLC slice mid-window; a write that skips the home
            // invalidation (`dls-skip-writeback`) leaves cluster 0
            // re-reading its stale copy while the slice has moved on.
            programs: vec![
                vec![Read(a(0)), Compute(50), Read(a(0))],
                vec![Compute(20), Read(a(0)), Write(a(0))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: None,
                dup: Some(9),
            },
            fault_budget: 1,
        },
    ]
}

/// Every scheme × organization combination the corpus is checked under:
/// dense (full-vector), 1-pointer broadcast / no-broadcast / superset,
/// coarse-vector — each over a complete and a deliberately tiny sparse
/// directory — plus the overflow organization (which fixes its own
/// pointer scheme).
pub fn scenarios() -> Vec<Scenario> {
    let schemes: [(&str, Scheme); 5] = [
        ("dense", Scheme::FullVector),
        ("dir1b", Scheme::dir_b(1)),
        ("dir1nb", Scheme::dir_nb(1)),
        ("dir1x", Scheme::dir_x(1)),
        ("dir1cv2", Scheme::dir_cv(1, 2)),
    ];
    let orgs: [(&str, Organization); 2] = [
        ("complete", Organization::Complete),
        (
            "sparse",
            Organization::Sparse {
                entries: 4,
                ways: 2,
                policy: Replacement::Lru,
            },
        ),
    ];
    let mut out = Vec::new();
    for (sn, scheme) in schemes {
        for (on, org) in &orgs {
            out.push(Scenario {
                label: format!("{sn}/{on}"),
                protocol: ProtocolKind::Dash,
                scheme,
                organization: org.clone(),
            });
        }
    }
    out.push(Scenario {
        label: "dir1nb/overflow".to_string(),
        protocol: ProtocolKind::Dash,
        scheme: Scheme::dir_nb(1),
        organization: Organization::Overflow {
            i: 1,
            wide_entries: 2,
            wide_ways: 1,
            policy: Replacement::Lru,
        },
    });
    // The directoryless backends have no scheme/organization axis: one
    // scenario each, named by the protocol.
    for protocol in [ProtocolKind::Tardis, ProtocolKind::Dls] {
        out.push(Scenario {
            label: protocol.name().to_string(),
            protocol,
            scheme: Scheme::FullVector,
            organization: Organization::Complete,
        });
    }
    out
}

/// Looks up corpus entries by name (`all` selects the whole corpus).
pub fn select(names: &str) -> Result<Vec<Litmus>, String> {
    let all = corpus();
    if names == "all" {
        return Ok(all);
    }
    let mut out = Vec::new();
    for want in names.split(',') {
        let want = want.trim();
        match all.iter().find(|l| l.name == want) {
            Some(l) => out.push(l.clone()),
            None => {
                return Err(format!(
                    "unknown litmus `{want}` (known: {})",
                    all.iter()
                        .map(|l| l.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        }
    }
    Ok(out)
}

impl Litmus {
    /// The machine configuration for this litmus under `scenario`.
    pub fn config(&self, scenario: &Scenario, trace: bool) -> MachineConfig {
        let mut cfg = MachineConfig::tiny(self.clusters).with_protocol(scenario.protocol);
        match &scenario.organization {
            &Organization::Overflow {
                i,
                wide_entries,
                wide_ways,
                policy,
            } => {
                cfg = cfg.with_overflow(i, wide_entries, wide_ways, policy);
            }
            org => {
                cfg.scheme = scenario.scheme;
                cfg.organization = org.clone();
            }
        }
        if trace {
            cfg = cfg.with_trace(TraceConfig::full(16 * 1024));
        }
        cfg
    }

    /// The boxed per-processor programs for this litmus.
    pub fn boxed_programs(&self) -> Vec<Box<dyn ThreadProgram>> {
        self.programs
            .iter()
            .map(|ops| Box::new(ScriptProgram::new(ops.clone())) as Box<dyn ThreadProgram>)
            .collect()
    }

    /// Builds a machine running this litmus under `scenario`, optionally
    /// mutated and/or trace-enabled (for counterexample emission).
    pub fn build(
        &self,
        scenario: &Scenario,
        mutation: Option<Mutation>,
        trace: bool,
    ) -> Machine {
        let mut m = Machine::new(self.config(scenario, trace), self.boxed_programs());
        if let Some(mu) = mutation {
            m.arm_mutation(mu);
        }
        m
    }

    /// Builds the same litmus machine partitioned across `shards` worker
    /// threads (conservative time windows) — results are byte-identical
    /// to [`Litmus::build`] with no mutation armed.
    pub fn build_sharded(
        &self,
        scenario: &Scenario,
        trace: bool,
        shards: usize,
    ) -> Result<scd_machine::ShardedMachine, String> {
        scd_machine::ShardedMachine::new(
            self.config(scenario, trace),
            self.boxed_programs(),
            shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_selectable() {
        let all = corpus();
        for l in &all {
            let got = select(l.name).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].name, l.name);
            assert_eq!(l.programs.len(), l.clusters, "{}: one program per cluster", l.name);
        }
        assert_eq!(select("all").unwrap().len(), all.len());
        assert!(select("no-such-test").is_err());
    }

    #[test]
    fn scenario_matrix_covers_schemes_orgs_and_protocols() {
        let s = scenarios();
        assert_eq!(s.len(), 13);
        assert!(s.iter().any(|x| x.label == "dense/complete"));
        assert!(s.iter().any(|x| x.label == "dir1cv2/sparse"));
        assert!(s.iter().any(|x| x.label.ends_with("/overflow")));
        for p in ProtocolKind::ALL {
            assert!(
                s.iter().any(|x| x.protocol == p),
                "no scenario exercises {p:?}"
            );
        }
    }

    #[test]
    fn litmus_machines_run_clean_on_the_default_path() {
        // Every (litmus, scenario) pair — all three protocols included —
        // must at minimum survive the deterministic (non-exploring) run
        // with invariants on.
        for l in corpus() {
            for sc in scenarios() {
                let mut m = l.build(&sc, None, false);
                if let Err(e) = m.try_run() {
                    panic!("{} under {}: {e}", l.name, sc.label);
                }
            }
        }
    }

    #[test]
    fn renew_litmus_actually_renews() {
        // The renewal-race litmus is only worth its name if the default
        // deterministic path drives at least one lease renewal.
        let sc = scenarios()
            .into_iter()
            .find(|s| s.protocol == ProtocolKind::Tardis)
            .unwrap();
        let l = select("renew-write-race").unwrap().remove(0);
        let mut m = l.build(&sc, None, false);
        let stats = m.try_run().unwrap();
        let t = stats.tardis.expect("tardis counters");
        assert!(t.renewals > 0, "no renewal exercised: {t:?}");
    }

    #[test]
    fn seeded_bugs_are_caught_at_quiescence() {
        // Each backend's seeded mutation must trip its protocol checker
        // even on the plain deterministic path of its target litmus.
        let cases = [
            (
                "lease-expiry-stale-read",
                ProtocolKind::Tardis,
                Mutation::TardisSkipWtsBump,
            ),
            (
                "write-after-shared-llc-hit",
                ProtocolKind::Dls,
                Mutation::DlsSkipWriteback,
            ),
        ];
        for (name, proto, mutation) in cases {
            let sc = scenarios()
                .into_iter()
                .find(|s| s.protocol == proto)
                .unwrap();
            let l = select(name).unwrap().remove(0);
            let mut m = l.build(&sc, Some(mutation), false);
            assert!(
                m.try_run().is_err(),
                "{name} under {proto:?} with {mutation:?}: violation not caught"
            );
        }
    }
}
