//! The litmus corpus: tiny adversarial workloads, each designed to drive
//! the protocol through one hazardous region, instantiated across every
//! directory scheme × organization combination.
//!
//! Every test is small enough for exhaustive interleaving exploration:
//! 2–3 single-processor clusters touching a handful of blocks. Addresses
//! are chosen against the `MachineConfig::tiny` geometry (16-byte blocks,
//! 4-block direct-mapped L1, 16-block 2-way L2 — so blocks congruent
//! mod 4 collide in L1 and mod 8 in L2; homes interleave block mod
//! clusters).

use scd_core::{Organization, Replacement, Scheme};
use scd_machine::machine::explore::{FaultEdges, Mutation};
use scd_machine::{Machine, MachineConfig};
use scd_tango::{Op, ScriptProgram, ThreadProgram};
use scd_trace::TraceConfig;

/// One litmus test: named programs plus the fault edges it wants explored.
#[derive(Clone, Debug)]
pub struct Litmus {
    /// Corpus-unique name (CLI `--litmus` selector).
    pub name: &'static str,
    /// One-line description of the hazard it probes.
    pub summary: &'static str,
    /// Cluster count (one processor each).
    pub clusters: usize,
    /// Per-processor op streams.
    pub programs: Vec<Vec<Op>>,
    /// Fault edges to enumerate while exploring this test.
    pub faults: FaultEdges,
    /// Maximum injected faults along any one explored path.
    pub fault_budget: u32,
}

/// One directory configuration a litmus test is instantiated against.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display label, e.g. `dense/complete`.
    pub label: String,
    /// Directory entry format.
    pub scheme: Scheme,
    /// Directory organization.
    pub organization: Organization,
}

/// Byte address of block `b` under the 16-byte-block tiny geometry.
fn a(b: u64) -> u64 {
    b * 16
}

/// The full litmus corpus.
///
/// Two structural rules make these effective:
///
/// * **Neutral homes.** A copy held *by* a block's home cluster is
///   bus-tracked, not directory-tracked, so writes that should exercise
///   the directory fan-out use blocks homed away from the sharers.
/// * **Staged timing.** Latencies are deterministic; the explorer's
///   nondeterminism is same-cycle ordering plus fault edges. `Compute`
///   paddings place the hazardous operations in each other's windows
///   (a write landing while sharers hold copies, an invalidation landing
///   around an eviction) instead of trivially before or after them.
pub fn corpus() -> Vec<Litmus> {
    use Op::{Compute, Read, Write};
    vec![
        Litmus {
            name: "store-buffering",
            summary: "two clusters write each other's block then read back (SB)",
            clusters: 2,
            // x = block 0 (home 0), y = block 1 (home 1). The delay edge
            // lets either write's request slip past the other cluster's
            // read, covering the orders fixed latencies would pin down.
            programs: vec![
                vec![Write(a(0)), Read(a(1))],
                vec![Write(a(1)), Read(a(0))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: Some(7),
                dup: None,
            },
            fault_budget: 1,
        },
        Litmus {
            name: "message-passing",
            summary: "writer publishes data then flag; reader polls flag then data (MP)",
            clusters: 3,
            // data = block 2, flag = block 5 — both homed at otherwise-idle
            // cluster 2, so every copy the writer must invalidate is
            // directory-tracked. The reader's first poll caches the stale
            // flag before the writer's fan-out reaches it.
            programs: vec![
                vec![Write(a(2)), Write(a(5))],
                vec![Read(a(5)), Read(a(2)), Read(a(5))],
                vec![],
            ],
            faults: FaultEdges::none(),
            fault_budget: 0,
        },
        Litmus {
            name: "inval-replacement-race",
            summary: "invalidation crosses a silent conflict-miss eviction of the same line",
            clusters: 2,
            // Blocks 0, 8, 16 collide in L1 (mod 4) and L2 (mod 8), all
            // homed at cluster 0. Cluster 1 fills block 0 (remote sharer)
            // then silently evicts it by touching the conflicting blocks;
            // cluster 0's staged writes land in that window, so the
            // invalidation can cross the eviction in flight.
            programs: vec![
                vec![Compute(90), Write(a(0)), Write(a(0))],
                vec![Read(a(0)), Read(a(8)), Read(a(16))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: Some(11),
                dup: None,
            },
            fault_budget: 1,
        },
        Litmus {
            name: "sparse-eviction-during-fanout",
            summary: "sparse directory entry evicted while its block is mid-write-fanout",
            clusters: 3,
            // Blocks 0, 3, 6 share home cluster 0 (mod 3) and, under the
            // sparse scenarios, compete for the same tiny directory set.
            // Cluster 2 becomes a remote sharer of block 0; cluster 1's
            // staged write fans out an invalidation right as cluster 0's
            // reads of blocks 3 and 6 displace block 0's directory entry.
            programs: vec![
                vec![Compute(80), Read(a(3)), Read(a(6))],
                vec![Compute(60), Write(a(0))],
                vec![Read(a(0))],
            ],
            faults: FaultEdges::none(),
            fault_budget: 0,
        },
        Litmus {
            name: "nack-retry-livelock",
            summary: "two writers race on one block under adversarial NACK placement",
            clusters: 2,
            // Block 1 is homed at cluster 1, so cluster 0's writes go
            // remote; NACK fault edges force backoff/retry at the worst
            // moments. A livelock shows up as an unexpectedly unbounded
            // path / deadlocked leaf.
            programs: vec![
                vec![Write(a(1)), Read(a(1))],
                vec![Write(a(1))],
            ],
            faults: FaultEdges {
                nack: true,
                delay: None,
                dup: None,
            },
            fault_budget: 2,
        },
        Litmus {
            name: "broadcast-overflow",
            summary: "limited-pointer entry overflows to broadcast/coarse mode mid-race",
            clusters: 3,
            // Block 1 is homed at cluster 1. Clusters 0 and 2 read it
            // first (two remote sharers overflow any 1-pointer entry);
            // the home's staged write then fans out through whatever
            // overflowed representation resulted — it must reach every
            // sharer. The duplicate edge re-sends a read request so
            // at-most-once directory recording is exercised too.
            programs: vec![
                vec![Read(a(1))],
                vec![Compute(150), Write(a(1))],
                vec![Read(a(1)), Read(a(1))],
            ],
            faults: FaultEdges {
                nack: false,
                delay: None,
                dup: Some(9),
            },
            fault_budget: 1,
        },
    ]
}

/// Every scheme × organization combination the corpus is checked under:
/// dense (full-vector), 1-pointer broadcast / no-broadcast / superset,
/// coarse-vector — each over a complete and a deliberately tiny sparse
/// directory — plus the overflow organization (which fixes its own
/// pointer scheme).
pub fn scenarios() -> Vec<Scenario> {
    let schemes: [(&str, Scheme); 5] = [
        ("dense", Scheme::FullVector),
        ("dir1b", Scheme::dir_b(1)),
        ("dir1nb", Scheme::dir_nb(1)),
        ("dir1x", Scheme::dir_x(1)),
        ("dir1cv2", Scheme::dir_cv(1, 2)),
    ];
    let orgs: [(&str, Organization); 2] = [
        ("complete", Organization::Complete),
        (
            "sparse",
            Organization::Sparse {
                entries: 4,
                ways: 2,
                policy: Replacement::Lru,
            },
        ),
    ];
    let mut out = Vec::new();
    for (sn, scheme) in schemes {
        for (on, org) in &orgs {
            out.push(Scenario {
                label: format!("{sn}/{on}"),
                scheme,
                organization: org.clone(),
            });
        }
    }
    out.push(Scenario {
        label: "dir1nb/overflow".to_string(),
        scheme: Scheme::dir_nb(1),
        organization: Organization::Overflow {
            i: 1,
            wide_entries: 2,
            wide_ways: 1,
            policy: Replacement::Lru,
        },
    });
    out
}

/// Looks up corpus entries by name (`all` selects the whole corpus).
pub fn select(names: &str) -> Result<Vec<Litmus>, String> {
    let all = corpus();
    if names == "all" {
        return Ok(all);
    }
    let mut out = Vec::new();
    for want in names.split(',') {
        let want = want.trim();
        match all.iter().find(|l| l.name == want) {
            Some(l) => out.push(l.clone()),
            None => {
                return Err(format!(
                    "unknown litmus `{want}` (known: {})",
                    all.iter()
                        .map(|l| l.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            }
        }
    }
    Ok(out)
}

impl Litmus {
    /// The machine configuration for this litmus under `scenario`.
    pub fn config(&self, scenario: &Scenario, trace: bool) -> MachineConfig {
        let mut cfg = MachineConfig::tiny(self.clusters);
        match &scenario.organization {
            &Organization::Overflow {
                i,
                wide_entries,
                wide_ways,
                policy,
            } => {
                cfg = cfg.with_overflow(i, wide_entries, wide_ways, policy);
            }
            org => {
                cfg.scheme = scenario.scheme;
                cfg.organization = org.clone();
            }
        }
        if trace {
            cfg = cfg.with_trace(TraceConfig::full(16 * 1024));
        }
        cfg
    }

    /// The boxed per-processor programs for this litmus.
    pub fn boxed_programs(&self) -> Vec<Box<dyn ThreadProgram>> {
        self.programs
            .iter()
            .map(|ops| Box::new(ScriptProgram::new(ops.clone())) as Box<dyn ThreadProgram>)
            .collect()
    }

    /// Builds a machine running this litmus under `scenario`, optionally
    /// mutated and/or trace-enabled (for counterexample emission).
    pub fn build(
        &self,
        scenario: &Scenario,
        mutation: Option<Mutation>,
        trace: bool,
    ) -> Machine {
        let mut m = Machine::new(self.config(scenario, trace), self.boxed_programs());
        if let Some(mu) = mutation {
            m.arm_mutation(mu);
        }
        m
    }

    /// Builds the same litmus machine partitioned across `shards` worker
    /// threads (conservative time windows) — results are byte-identical
    /// to [`Litmus::build`] with no mutation armed.
    pub fn build_sharded(
        &self,
        scenario: &Scenario,
        trace: bool,
        shards: usize,
    ) -> Result<scd_machine::ShardedMachine, String> {
        scd_machine::ShardedMachine::new(
            self.config(scenario, trace),
            self.boxed_programs(),
            shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_selectable() {
        let all = corpus();
        for l in &all {
            let got = select(l.name).unwrap();
            assert_eq!(got.len(), 1);
            assert_eq!(got[0].name, l.name);
            assert_eq!(l.programs.len(), l.clusters, "{}: one program per cluster", l.name);
        }
        assert_eq!(select("all").unwrap().len(), all.len());
        assert!(select("no-such-test").is_err());
    }

    #[test]
    fn scenario_matrix_covers_schemes_and_orgs() {
        let s = scenarios();
        assert_eq!(s.len(), 11);
        assert!(s.iter().any(|x| x.label == "dense/complete"));
        assert!(s.iter().any(|x| x.label == "dir1cv2/sparse"));
        assert!(s.iter().any(|x| x.label.ends_with("/overflow")));
    }

    #[test]
    fn litmus_machines_run_clean_on_the_default_path() {
        // Every (litmus, scenario) pair must at minimum survive the
        // deterministic (non-exploring) run with invariants on.
        for l in corpus() {
            for sc in scenarios() {
                let mut m = l.build(&sc, None, false);
                if let Err(e) = m.try_run() {
                    panic!("{} under {}: {e}", l.name, sc.label);
                }
            }
        }
    }
}
