//! Explicit-state exploration over the machine's branching API.
//!
//! [`explore`] performs a depth-first search over every interleaving (and,
//! with a fault budget, every fault placement) a machine can exhibit,
//! deduplicating states by canonical digest and asserting the per-state
//! coherence invariants at each one. Leaves (drained machines) get the
//! full quiescent validation a production run ends with. A violation —
//! invariant failure, simulation error, or protocol panic — is returned
//! as a [`Counterexample`]: the exact choice sequence that reproduces it.
//!
//! [`minimize`] shortens a counterexample by iterative deepening;
//! [`random_walk`] drives a seeded random path through the same choice
//! space (the cross-check that the simulator's nondeterminism is a subset
//! of the model checker's); [`replay_trace`] re-runs a counterexample on
//! a trace-enabled machine and emits standard `scd-trace` JSONL.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};

use scd_machine::machine::explore::{Choice, FaultEdges};
use scd_machine::Machine;

/// Exploration bounds and fault options.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Which fault edges to enumerate.
    pub faults: FaultEdges,
    /// Maximum injected faults along any one path.
    pub fault_budget: u32,
    /// Maximum path length before a branch is truncated.
    pub max_depth: usize,
    /// Maximum distinct states to visit before giving up.
    pub max_states: u64,
    /// Assert the per-state invariants at every visited state (on by
    /// default; off leaves only the leaf-state quiescent checks).
    pub check_each_step: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            faults: FaultEdges::none(),
            fault_budget: 0,
            max_depth: 4096,
            max_states: 200_000,
            check_each_step: true,
        }
    }
}

/// A reproducible invariant violation: the choice path that reaches it.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// What failed (invariant violation, simulation error, or panic).
    pub error: String,
    /// The choice sequence from the initial state to the failure.
    pub choices: Vec<Choice>,
}

/// Result of one exploration.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Distinct states visited (post-deduplication).
    pub visited: u64,
    /// Drained leaf states validated quiescently.
    pub leaves: u64,
    /// True if a depth or state bound cut the search short.
    pub truncated: bool,
    /// The first violation found, if any.
    pub violation: Option<Counterexample>,
    /// Digests of every state visited (for subset cross-checks).
    pub digests: HashSet<u64>,
}

/// Result of one random walk.
#[derive(Debug, Default)]
pub struct WalkOutcome {
    /// Steps actually taken.
    pub steps: usize,
    /// Digest of every state passed through, in order.
    pub digests: Vec<u64>,
    /// A violation hit along the walk, if any.
    pub violation: Option<Counterexample>,
}

/// Runs `f`, converting a panic into its message without letting the
/// default hook spam stderr (protocol `assert!`s double as invariant
/// checks during exploration, so panics here are *expected* findings).
fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    use std::cell::Cell;
    use std::sync::Once;
    thread_local! {
        static CAPTURING: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CAPTURING.with(Cell::get) {
                prev(info);
            }
        }));
    });
    CAPTURING.with(|c| c.set(true));
    let r = catch_unwind(AssertUnwindSafe(f));
    CAPTURING.with(|c| c.set(false));
    r.map_err(|p| {
        if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

struct Frame {
    machine: Machine,
    path: Vec<Choice>,
    faults_used: u32,
}

/// Exhaustively explores every interleaving of the machine `build`
/// produces, within the configured bounds.
///
/// `build` is a constructor rather than a machine so counterexamples can
/// later be replayed against fresh instances (exploration consumes its
/// machines).
pub fn explore(build: &dyn Fn() -> Machine, cfg: &ExploreConfig) -> Outcome {
    let mut out = Outcome::default();
    let mut root = build();
    if cfg.faults.any() {
        root.tolerate_faults();
    }
    root.begin_exploration();
    // Digest -> shallowest depth seen. Re-expanding a known state reached
    // by a *shorter* path keeps depth-limited searches complete, which
    // `minimize`'s iterative deepening relies on.
    let mut seen: HashMap<u64, usize> = HashMap::new();
    let mut stack = vec![Frame {
        machine: root,
        path: Vec::new(),
        faults_used: 0,
    }];
    while let Some(frame) = stack.pop() {
        let depth = frame.path.len();
        let digest = frame.machine.state_digest();
        match seen.entry(digest) {
            Entry::Occupied(mut e) => {
                if *e.get() <= depth {
                    continue;
                }
                e.insert(depth);
            }
            Entry::Vacant(e) => {
                e.insert(depth);
                out.visited += 1;
            }
        }
        if out.visited > cfg.max_states {
            out.truncated = true;
            break;
        }
        if cfg.check_each_step {
            if let Err(v) = frame.machine.check_step_invariants() {
                out.violation = Some(Counterexample {
                    error: v.to_string(),
                    choices: frame.path,
                });
                break;
            }
        }
        let mut machine = frame.machine;
        let choices = machine.exploration_choices(&cfg.faults);
        if choices.is_empty() {
            out.leaves += 1;
            match quiet_catch(AssertUnwindSafe(|| machine.finalize_exploration())) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    out.violation = Some(Counterexample {
                        error: e.to_string(),
                        choices: frame.path,
                    });
                    break;
                }
                Err(msg) => {
                    out.violation = Some(Counterexample {
                        error: format!("panic: {msg}"),
                        choices: frame.path,
                    });
                    break;
                }
            }
            continue;
        }
        if depth >= cfg.max_depth {
            out.truncated = true;
            continue;
        }
        // Reverse push so choice 0 is explored first: counterexamples come
        // out in a stable, reproducible DFS order.
        for &ch in choices.iter().rev() {
            if ch.is_fault() && frame.faults_used >= cfg.fault_budget {
                continue;
            }
            let mut child = machine.clone();
            let mut path = frame.path.clone();
            path.push(ch);
            match quiet_catch(AssertUnwindSafe(|| child.step_explore(ch))) {
                Ok(Ok(())) => stack.push(Frame {
                    machine: child,
                    path,
                    faults_used: frame.faults_used + u32::from(ch.is_fault()),
                }),
                Ok(Err(e)) => {
                    out.violation = Some(Counterexample {
                        error: e.to_string(),
                        choices: path,
                    });
                    break;
                }
                Err(msg) => {
                    out.violation = Some(Counterexample {
                        error: format!("panic: {msg}"),
                        choices: path,
                    });
                    break;
                }
            }
        }
        if out.violation.is_some() {
            break;
        }
    }
    out.digests = seen.into_keys().collect();
    out
}

/// Shrinks a counterexample to minimal depth by iterative deepening: the
/// first depth limit at which *any* violation appears is, by construction,
/// the length of a shortest violating path.
pub fn minimize(
    build: &dyn Fn() -> Machine,
    cfg: &ExploreConfig,
    upper: usize,
) -> Option<Counterexample> {
    for limit in 1..=upper {
        let mut bounded = cfg.clone();
        bounded.max_depth = limit;
        let o = explore(build, &bounded);
        if o.violation.is_some() {
            return o.violation;
        }
    }
    None
}

/// Drives one seeded random path through the exploration choice space.
///
/// Uses an inline xorshift64* generator so walks are reproducible from the
/// seed alone. The visited digests let tests assert the walk stays inside
/// the exhaustively-explored state set.
pub fn random_walk(
    build: &dyn Fn() -> Machine,
    cfg: &ExploreConfig,
    seed: u64,
    max_steps: usize,
) -> WalkOutcome {
    let mut out = WalkOutcome::default();
    let mut rng = seed | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut m = build();
    if cfg.faults.any() {
        m.tolerate_faults();
    }
    m.begin_exploration();
    out.digests.push(m.state_digest());
    let mut faults_used = 0u32;
    for _ in 0..max_steps {
        let choices: Vec<Choice> = m
            .exploration_choices(&cfg.faults)
            .into_iter()
            .filter(|c| !c.is_fault() || faults_used < cfg.fault_budget)
            .collect();
        if choices.is_empty() {
            match quiet_catch(AssertUnwindSafe(|| m.finalize_exploration())) {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => {
                    out.violation = Some(Counterexample {
                        error: e.to_string(),
                        choices: Vec::new(),
                    });
                }
                Err(msg) => {
                    out.violation = Some(Counterexample {
                        error: format!("panic: {msg}"),
                        choices: Vec::new(),
                    });
                }
            }
            break;
        }
        let ch = choices[(next() % choices.len() as u64) as usize];
        faults_used += u32::from(ch.is_fault());
        match quiet_catch(AssertUnwindSafe(|| m.step_explore(ch))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                out.violation = Some(Counterexample {
                    error: e.to_string(),
                    choices: Vec::new(),
                });
                break;
            }
            Err(msg) => {
                out.violation = Some(Counterexample {
                    error: format!("panic: {msg}"),
                    choices: Vec::new(),
                });
                break;
            }
        }
        out.steps += 1;
        out.digests.push(m.state_digest());
    }
    out
}

/// Replays a counterexample on a freshly built (ideally trace-enabled)
/// machine, returning the `scd-trace` JSONL of everything up to the
/// failure plus a human-readable step listing.
///
/// The JSONL is the standard envelope (`seq`, `cycle`, `cluster`,
/// `type`), so `scd-validate` and the Perfetto exporter consume it
/// directly.
pub fn replay_trace(
    build: &dyn Fn() -> Machine,
    cfg: &ExploreConfig,
    choices: &[Choice],
) -> (String, Vec<String>) {
    let mut m = build();
    if cfg.faults.any() {
        m.tolerate_faults();
    }
    m.begin_exploration();
    let mut steps = Vec::with_capacity(choices.len());
    for &ch in choices {
        steps.push(m.describe_choice(ch));
        match quiet_catch(AssertUnwindSafe(|| m.step_explore(ch))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                steps.push(format!("=> {e}"));
                break;
            }
            Err(msg) => {
                steps.push(format!("=> panic: {msg}"));
                break;
            }
        }
    }
    let mut jsonl = String::new();
    for ev in m.trace_events() {
        jsonl.push_str(&ev.to_json().to_string());
        jsonl.push('\n');
    }
    (jsonl, steps)
}
