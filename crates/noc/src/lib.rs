//! # scd-noc — scalable interconnection network
//!
//! DASH clusters are "interconnected by a mesh network" (§2). This crate
//! models that substrate: a 2D mesh [`Mesh`] with dimension-ordered (X-then-
//! Y) routing, a pluggable [`LatencyModel`], and per-network accounting of
//! messages and hop counts.
//!
//! The network is latency-only (no link contention): the paper's headline
//! metric is message *counts*, which are exact, and its 1-processor-per-
//! cluster runs leave buses and links underutilized anyway (§6.2 discusses
//! this explicitly). The mesh still routes every message, so hop
//! distributions — and therefore latency differences between near and far
//! clusters — are faithfully modeled.

#![warn(missing_docs)]

pub mod fault;
pub mod mesh;
pub mod network;

pub use fault::FaultPlan;
pub use mesh::{Mesh, RouteIter};
pub use network::{merge_link_traffic, LatencyModel, LinkCounters, Network, NetworkStats};
