//! Latency model and per-network accounting.

use std::collections::HashMap;

use crate::mesh::Mesh;

/// How message latency is computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyModel {
    /// Every remote message takes the same time (useful for calibration and
    /// for isolating topology effects in ablation benches).
    Uniform {
        /// Cycles per message.
        latency: u64,
    },
    /// Fixed overhead (send/receive, network interface) plus a per-hop cost
    /// — the first-order model of a wormhole-routed mesh without contention.
    Mesh {
        /// Cycles of fixed overhead per message.
        fixed: u64,
        /// Cycles per mesh hop.
        per_hop: u64,
    },
}

impl LatencyModel {
    /// Latency of one message from `src` to `dst` on `mesh`.
    pub fn latency(&self, mesh: &Mesh, src: usize, dst: usize) -> u64 {
        match *self {
            LatencyModel::Uniform { latency } => {
                if src == dst {
                    0
                } else {
                    latency
                }
            }
            LatencyModel::Mesh { fixed, per_hop } => {
                if src == dst {
                    0
                } else {
                    fixed + per_hop * mesh.distance(src, dst) as u64
                }
            }
        }
    }

    /// The minimum latency of any remote (`src != dst`) message under this
    /// model: adjacent clusters are one hop apart, so a mesh message costs
    /// at least `fixed + per_hop`. This is the conservative-window
    /// **lookahead** of a sharded run — a message sent at cycle `t` can
    /// never be delivered to another cluster before `t + lookahead`, so
    /// shards may safely advance `lookahead` cycles past the global
    /// minimum pending event without waiting on each other. Contention and
    /// fault-injected jitter only ever *add* latency, so the bound holds
    /// under both.
    pub fn min_remote_latency(&self) -> u64 {
        match *self {
            LatencyModel::Uniform { latency } => latency,
            LatencyModel::Mesh { fixed, per_hop } => fixed + per_hop,
        }
    }
}

/// Message and hop accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages sent (excluding src == dst local deliveries).
    pub messages: u64,
    /// Total hops traversed.
    pub hops: u64,
    /// Histogram of hop counts (index = hops).
    pub hop_histogram: Vec<u64>,
    /// Cycles spent queued behind busy links (contention model only).
    pub contention_cycles: u64,
}

impl NetworkStats {
    /// Mean hops per message.
    pub fn mean_hops(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.hops as f64 / self.messages as f64
        }
    }

    /// Folds another accounting into this one (element-wise sums). Used to
    /// combine per-shard networks into whole-machine statistics.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.messages += other.messages;
        self.hops += other.hops;
        self.contention_cycles += other.contention_cycles;
        if self.hop_histogram.len() < other.hop_histogram.len() {
            self.hop_histogram.resize(other.hop_histogram.len(), 0);
        }
        for (i, &n) in other.hop_histogram.iter().enumerate() {
            self.hop_histogram[i] += n;
        }
    }
}

/// Per-directed-link traffic counters, collected only when the
/// attribution profiler enables them ([`Network::enable_link_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Messages that crossed the link.
    pub messages: u64,
    /// Flits that crossed the link (each flit occupies the channel for
    /// one flit-time; flits / elapsed cycles is the channel occupancy).
    pub flits: u64,
}

/// The interconnect of one machine: topology + latency model + statistics.
#[derive(Clone, Debug)]
pub struct Network {
    mesh: Mesh,
    model: LatencyModel,
    stats: NetworkStats,
    /// Cycles each message holds a link, when contention is modeled.
    link_occupancy: Option<u64>,
    /// Next-free time per directed link `(from, to)`.
    link_free: HashMap<(usize, usize), u64>,
    /// Per-link traffic counters; `None` (the default) records nothing —
    /// the inert-by-default contract of every profiling hook.
    link_traffic: Option<HashMap<(usize, usize), LinkCounters>>,
}

impl Network {
    /// Creates a network over `clusters` nodes arranged as a near-square
    /// mesh.
    pub fn new(clusters: usize, model: LatencyModel) -> Self {
        Network {
            mesh: Mesh::near_square(clusters),
            model,
            stats: NetworkStats::default(),
            link_occupancy: None,
            link_free: HashMap::new(),
            link_traffic: None,
        }
    }

    /// Creates a network over an explicit mesh.
    pub fn with_mesh(mesh: Mesh, model: LatencyModel) -> Self {
        Network {
            mesh,
            model,
            stats: NetworkStats::default(),
            link_occupancy: None,
            link_free: HashMap::new(),
            link_traffic: None,
        }
    }

    /// Enables link contention: each message holds every link along its
    /// dimension-ordered route for `occupancy` cycles, and queues behind
    /// earlier traffic (store-and-forward approximation; only meaningful
    /// with the [`LatencyModel::Mesh`] model).
    pub fn with_contention(mut self, occupancy: u64) -> Self {
        self.link_occupancy = Some(occupancy);
        self
    }

    /// The topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Records a message send at time `now` and returns its delivery
    /// latency in cycles.
    ///
    /// `src == dst` is a local delivery: zero latency, not counted as
    /// network traffic (intra-cluster transfers ride the cluster bus).
    /// With contention enabled, the message additionally queues behind
    /// earlier traffic on each link of its route.
    pub fn send(&mut self, now: u64, src: usize, dst: usize) -> u64 {
        if src == dst {
            return 0;
        }
        let hops = self.mesh.distance(src, dst);
        self.stats.messages += 1;
        self.stats.hops += hops as u64;
        if self.stats.hop_histogram.len() <= hops {
            self.stats.hop_histogram.resize(hops + 1, 0);
        }
        self.stats.hop_histogram[hops] += 1;
        let base = self.model.latency(&self.mesh, src, dst);
        let Some(occ) = self.link_occupancy else {
            return base;
        };
        // Walk the route, queueing behind each link's previous occupant.
        let per_hop = match self.model {
            LatencyModel::Mesh { per_hop, .. } => per_hop,
            LatencyModel::Uniform { .. } => 1,
        };
        let mut t = now;
        let mut prev = src;
        let mut waited = 0;
        for next in self.mesh.route(src, dst) {
            let free = self.link_free.entry((prev, next)).or_insert(0);
            if *free > t {
                waited += *free - t;
                t = *free;
            }
            *free = t + occ;
            t += per_hop.max(1);
            prev = next;
        }
        self.stats.contention_cycles += waited;
        base + waited
    }

    /// Latency a message would have, without recording it.
    pub fn peek_latency(&self, src: usize, dst: usize) -> u64 {
        self.model.latency(&self.mesh, src, dst)
    }

    /// Mesh hops between two clusters (0 for a local delivery), without
    /// recording anything.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        if src == dst {
            0
        } else {
            self.mesh.distance(src, dst)
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Turns on per-link traffic counters. Off (and free) by default;
    /// the attribution profiler enables them at machine construction.
    pub fn enable_link_counters(&mut self) {
        self.link_traffic = Some(HashMap::new());
    }

    /// Whether per-link counters are being collected.
    pub fn link_counters_enabled(&self) -> bool {
        self.link_traffic.is_some()
    }

    /// Charges `flits` to every directed link on the dimension-ordered
    /// route from `src` to `dst`. No-op unless counters are enabled or
    /// for local deliveries — and purely observational either way (never
    /// affects latency or ordering).
    pub fn note_link_traffic(&mut self, src: usize, dst: usize, flits: u64) {
        let Some(map) = self.link_traffic.as_mut() else {
            return;
        };
        if src == dst {
            return;
        }
        let mut prev = src;
        for next in self.mesh.route(src, dst) {
            let c = map.entry((prev, next)).or_default();
            c.messages += 1;
            c.flits += flits;
            prev = next;
        }
    }

    /// Snapshot of the per-link counters, busiest (most flits) first,
    /// ties broken by link id for determinism. Empty when disabled.
    pub fn link_traffic(&self) -> Vec<((usize, usize), LinkCounters)> {
        let Some(map) = &self.link_traffic else {
            return Vec::new();
        };
        let mut v: Vec<_> = map.iter().map(|(&k, &c)| (k, c)).collect();
        v.sort_by(|a, b| b.1.flits.cmp(&a.1.flits).then(a.0.cmp(&b.0)));
        v
    }
}

/// Merges per-link traffic snapshots (e.g. one per shard, each covering
/// the links its clusters sent on) into one table with the same
/// busiest-first, link-id-tie-broken ordering [`Network::link_traffic`]
/// produces — so a merged table is byte-compatible with a whole-machine
/// one.
pub fn merge_link_traffic(
    parts: impl IntoIterator<Item = Vec<((usize, usize), LinkCounters)>>,
) -> Vec<((usize, usize), LinkCounters)> {
    let mut map: HashMap<(usize, usize), LinkCounters> = HashMap::new();
    for part in parts {
        for (link, c) in part {
            let e = map.entry(link).or_default();
            e.messages += c.messages;
            e.flits += c.flits;
        }
    }
    let mut v: Vec<_> = map.into_iter().collect();
    v.sort_by(|a, b| b.1.flits.cmp(&a.1.flits).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_ignores_distance() {
        let m = LatencyModel::Uniform { latency: 20 };
        let mesh = Mesh::new(4, 4);
        assert_eq!(m.latency(&mesh, 0, 1), 20);
        assert_eq!(m.latency(&mesh, 0, 15), 20);
        assert_eq!(m.latency(&mesh, 3, 3), 0);
    }

    #[test]
    fn mesh_model_scales_with_hops() {
        let m = LatencyModel::Mesh {
            fixed: 10,
            per_hop: 2,
        };
        let mesh = Mesh::new(4, 4);
        assert_eq!(m.latency(&mesh, 0, 1), 12);
        assert_eq!(m.latency(&mesh, 0, 15), 10 + 2 * 6);
        assert_eq!(m.latency(&mesh, 5, 5), 0);
    }

    #[test]
    fn network_accounts_messages_and_hops() {
        let mut n = Network::new(
            16,
            LatencyModel::Mesh {
                fixed: 10,
                per_hop: 2,
            },
        );
        assert_eq!(n.send(0, 0, 0), 0, "local delivery is free");
        assert_eq!(n.stats().messages, 0);
        let lat = n.send(0, 0, 15);
        assert_eq!(lat, 22);
        n.send(100, 0, 1);
        assert_eq!(n.stats().messages, 2);
        assert_eq!(n.stats().hops, 7);
        assert_eq!(n.stats().hop_histogram[6], 1);
        assert_eq!(n.stats().hop_histogram[1], 1);
        assert!((n.stats().mean_hops() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn hops_accessor_matches_send_accounting() {
        let mut n = Network::new(16, LatencyModel::Uniform { latency: 5 });
        assert_eq!(n.hops(3, 3), 0, "local delivery crosses no links");
        assert_eq!(n.hops(0, 15), 6);
        assert_eq!(n.hops(0, 1), 1);
        n.send(0, 0, 15);
        assert_eq!(n.stats().hops, n.hops(0, 15) as u64);
        assert_eq!(n.stats().messages, 1, "hops() itself records nothing");
    }

    #[test]
    fn link_counters_are_inert_until_enabled() {
        let mut n = Network::new(16, LatencyModel::Uniform { latency: 5 });
        n.note_link_traffic(0, 3, 4);
        assert!(!n.link_counters_enabled());
        assert!(n.link_traffic().is_empty(), "disabled counters record nothing");
        n.enable_link_counters();
        n.note_link_traffic(0, 3, 4);
        n.note_link_traffic(0, 2, 1);
        n.note_link_traffic(5, 5, 9);
        let links = n.link_traffic();
        // Route 0 -> 3 shares links (0,1) and (1,2) with 0 -> 2.
        assert_eq!(links.len(), 3);
        assert_eq!(links[0].0, (0, 1), "busiest link first");
        assert_eq!(links[0].1, LinkCounters { messages: 2, flits: 5 });
        assert_eq!(links[2].1, LinkCounters { messages: 1, flits: 4 });
        assert_eq!(n.stats().messages, 0, "counters never touch send stats");
    }

    #[test]
    fn peek_does_not_record() {
        let mut n = Network::new(16, LatencyModel::Uniform { latency: 5 });
        assert_eq!(n.peek_latency(0, 3), 5);
        assert_eq!(n.stats().messages, 0);
        n.send(0, 0, 3);
        assert_eq!(n.stats().messages, 1);
    }
}
