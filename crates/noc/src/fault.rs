//! Deterministic fault-injection configuration for the interconnect.
//!
//! A [`FaultPlan`] describes *which* network-level misbehaviours a run
//! should inject and at what rates; it is pure configuration. The machine
//! applies it per message with a forked `SimRng`, so fault placement is a
//! deterministic function of the machine seed — a failing faulty run
//! reproduces bit-for-bit.
//!
//! Four fault modes exist, each scoped to the message kinds the DASH-style
//! protocol can absorb (see `scd-machine`'s failure-model notes and
//! DESIGN.md):
//!
//! * **nack** — the home converts an arriving coherence request into a
//!   transient NACK instead of servicing it; the requester retries with
//!   exponential backoff. This is the paper's §7 DASH behaviour (the
//!   Remote Access Cache exists precisely to absorb NAK/retry).
//! * **dup** — a read request is delivered twice (at-least-once request
//!   channel); the home re-services it and the requester drops the stray
//!   reply.
//! * **delay** — a request-class message suffers a latency spike. Delivery
//!   order *within* a (src, dst) channel is preserved (the machine clamps
//!   per channel), matching what a congested but FIFO link can do.
//! * **reorder** — a coherence request is jittered *without* the channel
//!   clamp, so it can overtake earlier traffic (e.g. its own cluster's
//!   writeback), exercising the home's park/NACK recovery paths.
//!
//! The plan is off by default ([`FaultPlan::default`] injects nothing) and
//! a disabled plan leaves the simulation bit-identical to a build without
//! fault hooks.

/// Fault-injection rates for one run. All probabilities are per eligible
/// message, in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Probability an arriving coherence request (read or write) is NACKed
    /// by the home instead of serviced.
    pub nack_prob: f64,
    /// Probability a read request is delivered twice.
    pub dup_prob: f64,
    /// Probability a request-class message suffers a latency spike.
    pub delay_prob: f64,
    /// Maximum extra cycles of one latency spike (uniform in
    /// `[1, delay_cycles]`).
    pub delay_cycles: u64,
    /// Probability a coherence request is jittered out of channel order.
    pub reorder_prob: f64,
    /// Maximum out-of-order jitter in cycles (uniform in
    /// `[1, reorder_window]`).
    pub reorder_window: u64,
}

impl FaultPlan {
    /// A plan injecting nothing (identical to running without one).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether any fault mode is enabled.
    pub fn is_active(&self) -> bool {
        self.nack_prob > 0.0
            || self.dup_prob > 0.0
            || (self.delay_prob > 0.0 && self.delay_cycles > 0)
            || (self.reorder_prob > 0.0 && self.reorder_window > 0)
    }

    /// NACK-only plan.
    pub fn nack(prob: f64) -> Self {
        FaultPlan {
            nack_prob: prob,
            ..Self::default()
        }
    }

    /// Duplication-only plan.
    pub fn dup(prob: f64) -> Self {
        FaultPlan {
            dup_prob: prob,
            ..Self::default()
        }
    }

    /// Latency-spike-only plan.
    pub fn delay(prob: f64, cycles: u64) -> Self {
        FaultPlan {
            delay_prob: prob,
            delay_cycles: cycles,
            ..Self::default()
        }
    }

    /// Reorder-only plan.
    pub fn reorder(prob: f64, window: u64) -> Self {
        FaultPlan {
            reorder_prob: prob,
            reorder_window: window,
            ..Self::default()
        }
    }

    /// Parses a fault specification string.
    ///
    /// Grammar: comma-separated clauses, each one of
    ///
    /// * `nack:<prob>`
    /// * `dup:<prob>`
    /// * `delay:<prob>:<max-cycles>`
    /// * `reorder:<prob>:<max-cycles>`
    ///
    /// e.g. `nack:0.01`, `delay:0.02:200`, or `nack:0.01,dup:0.005`.
    /// Later clauses for the same mode overwrite earlier ones.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let mut parts = clause.split(':');
            let mode = parts.next().unwrap_or("");
            let prob = parts
                .next()
                .ok_or_else(|| format!("fault clause `{clause}`: missing probability"))?
                .parse::<f64>()
                .map_err(|e| format!("fault clause `{clause}`: bad probability ({e})"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!(
                    "fault clause `{clause}`: probability {prob} outside [0, 1]"
                ));
            }
            let cycles = parts
                .next()
                .map(|c| {
                    c.parse::<u64>()
                        .map_err(|e| format!("fault clause `{clause}`: bad cycle count ({e})"))
                })
                .transpose()?;
            if parts.next().is_some() {
                return Err(format!("fault clause `{clause}`: too many fields"));
            }
            match (mode, cycles) {
                ("nack", None) => plan.nack_prob = prob,
                ("dup", None) => plan.dup_prob = prob,
                ("delay", Some(c)) if c > 0 => {
                    plan.delay_prob = prob;
                    plan.delay_cycles = c;
                }
                ("reorder", Some(c)) if c > 0 => {
                    plan.reorder_prob = prob;
                    plan.reorder_window = c;
                }
                ("delay" | "reorder", _) => {
                    return Err(format!(
                        "fault clause `{clause}`: needs a positive cycle bound \
                         ({mode}:<prob>:<cycles>)"
                    ));
                }
                ("nack" | "dup", Some(_)) => {
                    return Err(format!("fault clause `{clause}`: too many fields"));
                }
                _ => {
                    return Err(format!(
                        "fault clause `{clause}`: unknown mode `{mode}` \
                         (expected nack, dup, delay, or reorder)"
                    ));
                }
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        assert!(!FaultPlan::default().is_active());
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn parse_single_clauses() {
        assert_eq!(FaultPlan::parse("nack:0.01").unwrap(), FaultPlan::nack(0.01));
        assert_eq!(FaultPlan::parse("dup:0.005").unwrap(), FaultPlan::dup(0.005));
        assert_eq!(
            FaultPlan::parse("delay:0.02:200").unwrap(),
            FaultPlan::delay(0.02, 200)
        );
        assert_eq!(
            FaultPlan::parse("reorder:0.1:50").unwrap(),
            FaultPlan::reorder(0.1, 50)
        );
    }

    #[test]
    fn parse_combined_clauses() {
        let plan = FaultPlan::parse("nack:0.01, dup:0.005").unwrap();
        assert_eq!(plan.nack_prob, 0.01);
        assert_eq!(plan.dup_prob, 0.005);
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "nack",
            "nack:2.0",
            "nack:-0.1",
            "nack:0.1:5",
            "delay:0.1",
            "delay:0.1:0",
            "delay:0.1:10:3",
            "jitter:0.1",
            "dup:zero",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn parse_empty_is_inert() {
        assert!(!FaultPlan::parse("").unwrap().is_active());
    }
}
