//! 2D mesh topology with dimension-ordered routing.

/// A rectangular mesh of `width x height` nodes.
///
/// Node `n` sits at `(n % width, n / width)`. Routing is X-first then Y
/// (dimension-ordered, deadlock-free in wormhole-routed meshes — the
/// mechanism DASH's prototype fabric uses).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// An explicit `width x height` mesh.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width >= 1 && height >= 1, "degenerate mesh");
        Mesh { width, height }
    }

    /// The most nearly square mesh holding at least `nodes` nodes
    /// (e.g. 16 -> 4x4, 32 -> 8x4, 64 -> 8x8).
    pub fn near_square(nodes: usize) -> Self {
        assert!(nodes >= 1);
        let mut h = (nodes as f64).sqrt().floor() as usize;
        while h > 1 && !nodes.is_multiple_of(h) {
            h -= 1;
        }
        Mesh::new(nodes / h, h)
    }

    /// Mesh width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinates of node `n`.
    pub fn coords(&self, n: usize) -> (usize, usize) {
        assert!(n < self.nodes(), "node {n} outside mesh");
        (n % self.width, n / self.width)
    }

    /// Node at `(x, y)`.
    pub fn node_at(&self, x: usize, y: usize) -> usize {
        assert!(x < self.width && y < self.height);
        y * self.width + x
    }

    /// Manhattan distance between two nodes (number of mesh hops).
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// The dimension-ordered route from `a` to `b`, as the sequence of
    /// intermediate+final nodes traversed (empty when `a == b`).
    ///
    /// Returns an allocation-free iterator: the route used to materialize
    /// a `Vec<usize>` on every call, which made every simulated message
    /// (contention walk + per-link traffic counters) pay a heap
    /// allocation. Call sites that want a vector can still `.collect()`.
    pub fn route(&self, a: usize, b: usize) -> RouteIter {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        RouteIter {
            mesh: *self,
            x: ax,
            y: ay,
            bx,
            by,
        }
    }

    /// Network diameter (longest shortest path).
    pub fn diameter(&self) -> usize {
        self.width - 1 + self.height - 1
    }

    /// Mean hop distance over all ordered pairs of distinct nodes.
    pub fn mean_distance(&self) -> f64 {
        let n = self.nodes();
        if n == 1 {
            return 0.0;
        }
        let mut total = 0usize;
        for a in 0..n {
            for b in 0..n {
                total += self.distance(a, b);
            }
        }
        total as f64 / (n * (n - 1)) as f64
    }
}

/// Allocation-free dimension-ordered route walk: X-moves toward the
/// target column, then Y-moves toward the target row, yielding each node
/// entered (see [`Mesh::route`]).
#[derive(Clone, Copy, Debug)]
pub struct RouteIter {
    mesh: Mesh,
    x: usize,
    y: usize,
    bx: usize,
    by: usize,
}

impl Iterator for RouteIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.x != self.bx {
            self.x = if self.bx > self.x { self.x + 1 } else { self.x - 1 };
        } else if self.y != self.by {
            self.y = if self.by > self.y { self.y + 1 } else { self.y - 1 };
        } else {
            return None;
        }
        Some(self.mesh.node_at(self.x, self.y))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter {
    fn len(&self) -> usize {
        self.x.abs_diff(self.bx) + self.y.abs_diff(self.by)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_shapes() {
        assert_eq!(Mesh::near_square(16), Mesh::new(4, 4));
        assert_eq!(Mesh::near_square(32), Mesh::new(8, 4)); // DASH-scale 32 clusters
        assert_eq!(Mesh::near_square(64), Mesh::new(8, 8));
        assert_eq!(Mesh::near_square(1), Mesh::new(1, 1));
        // Primes degrade to a line but still hold everyone.
        assert_eq!(Mesh::near_square(7).nodes(), 7);
    }

    #[test]
    fn coords_round_trip() {
        let m = Mesh::new(8, 4);
        for n in 0..m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn distance_is_manhattan() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.distance(0, 0), 0);
        assert_eq!(m.distance(0, 3), 3);
        assert_eq!(m.distance(0, 15), 6);
        assert_eq!(m.distance(5, 10), 2);
        // Symmetry.
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(m.distance(a, b), m.distance(b, a));
            }
        }
    }

    #[test]
    fn route_length_equals_distance_and_ends_at_target() {
        let m = Mesh::new(8, 4);
        for a in 0..m.nodes() {
            for b in 0..m.nodes() {
                assert_eq!(m.route(a, b).len(), m.distance(a, b), "{a}->{b}");
                let r: Vec<usize> = m.route(a, b).collect();
                assert_eq!(r.len(), m.distance(a, b), "{a}->{b}");
                if a != b {
                    assert_eq!(*r.last().unwrap(), b);
                }
                // Each step moves exactly one hop.
                let mut prev = a;
                for &next in &r {
                    assert_eq!(m.distance(prev, next), 1, "{a}->{b} via {r:?}");
                    prev = next;
                }
            }
        }
    }

    #[test]
    fn route_is_x_first() {
        let m = Mesh::new(4, 4);
        // 0 (0,0) -> 10 (2,2): expect x-moves 1,2 then y-moves 6,10.
        assert_eq!(m.route(0, 10).collect::<Vec<_>>(), vec![1, 2, 6, 10]);
    }

    /// The iterator's size_hint is exact at every step (callers size
    /// latency math off it).
    #[test]
    fn route_iter_is_exact_size() {
        let m = Mesh::new(8, 4);
        let mut it = m.route(0, 30);
        let mut expect = m.distance(0, 30);
        assert_eq!(it.len(), expect);
        while it.next().is_some() {
            expect -= 1;
            assert_eq!(it.len(), expect);
            assert_eq!(it.size_hint(), (expect, Some(expect)));
        }
        assert_eq!(expect, 0);
    }

    #[test]
    fn diameter_and_mean() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.diameter(), 6);
        let mean = m.mean_distance();
        assert!(mean > 2.0 && mean < 3.0, "4x4 mean distance ~2.67, got {mean}");
    }
}
