//! Property-based tests for the mesh: routing validity, metric properties,
//! and the triangle inequality the coherence protocol's ordering argument
//! relies on (see `scd-machine` module docs).

use proptest::prelude::*;
use scd_noc::{LatencyModel, Mesh};

proptest! {
    #[test]
    fn routes_are_minimal_and_valid(w in 1usize..=8, h in 1usize..=8, a_s in any::<u16>(), b_s in any::<u16>()) {
        let m = Mesh::new(w, h);
        let a = a_s as usize % m.nodes();
        let b = b_s as usize % m.nodes();
        let route: Vec<usize> = m.route(a, b).collect();
        prop_assert_eq!(route.len(), m.distance(a, b));
        let mut prev = a;
        for &n in &route {
            prop_assert_eq!(m.distance(prev, n), 1, "route must step one hop");
            prev = n;
        }
        prop_assert_eq!(prev, b);
    }

    #[test]
    fn distance_is_a_metric(n in 1usize..=64, xs in any::<u32>()) {
        let m = Mesh::near_square(n);
        let total = m.nodes();
        let a = xs as usize % total;
        let b = (xs as usize / 64) % total;
        let c = (xs as usize / 4096) % total;
        prop_assert_eq!(m.distance(a, a), 0);
        prop_assert_eq!(m.distance(a, b), m.distance(b, a));
        prop_assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c));
    }

    #[test]
    fn latency_triangle_inequality_is_strict_for_distinct_relays(
        n in 2usize..=64,
        xs in any::<u32>(),
        fixed in 1u64..=20,
        per_hop in 0u64..=4,
    ) {
        // The protocol's no-overtaking argument needs:
        // lat(a,c) < lat(a,b) + lat(b,c) whenever a != b and b != c.
        let mesh = Mesh::near_square(n);
        let model = LatencyModel::Mesh { fixed, per_hop };
        let total = mesh.nodes();
        let a = xs as usize % total;
        let b = (xs as usize / 64) % total;
        let c = (xs as usize / 4096) % total;
        prop_assume!(a != b && b != c && a != c);
        prop_assert!(
            model.latency(&mesh, a, c) < model.latency(&mesh, a, b) + model.latency(&mesh, b, c)
        );
        let uni = LatencyModel::Uniform { latency: fixed };
        prop_assert!(
            uni.latency(&mesh, a, c) < uni.latency(&mesh, a, b) + uni.latency(&mesh, b, c)
        );
    }

    #[test]
    fn near_square_holds_everyone(n in 1usize..=300) {
        let m = Mesh::near_square(n);
        prop_assert!(m.nodes() >= n);
        // Never degenerates to worse than a line.
        prop_assert!(m.width() >= m.height());
    }
}
