//! # scd — scalable directory-based cache coherence
//!
//! A from-scratch Rust reproduction of Gupta, Weber & Mowry, *"Reducing
//! Memory and Traffic Requirements for Scalable Directory-Based Cache
//! Coherence Schemes"* (ICPP 1990): the **coarse vector** directory scheme
//! and **sparse directories**, evaluated on an event-driven simulator of
//! the Stanford DASH multiprocessor driven by re-implementations of the
//! paper's four benchmark applications.
//!
//! This facade crate re-exports the subsystem crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `scd-core` | directory schemes, sparse organization, overhead model, Figure-2 analysis |
//! | [`sim`] | `scd-sim` | deterministic event queue and RNG |
//! | [`mem`] | `scd-mem` | set-associative caches, L1/L2 hierarchy, cluster snoop group |
//! | [`noc`] | `scd-noc` | 2D mesh interconnect and latency models |
//! | [`protocol`] | `scd-protocol` | DASH protocol messages, RAC, home serialization, queue locks |
//! | [`machine`] | `scd-machine` | the assembled machine and run loop |
//! | [`tango`] | `scd-tango` | reference generation, trace capture/replay |
//! | [`apps`] | `scd-apps` | LU, DWF, MP3D, LocusRoute workload generators |
//! | [`stats`] | `scd-stats` | traffic counters, histograms, table rendering |
//! | [`trace`] | `scd-trace` | transaction tracing, metrics registry, JSON telemetry |
//! | [`check`] | `scd-check` | exhaustive small-config model checker and litmus corpus |
//!
//! ## Quickstart
//!
//! ```
//! use scd::apps::{lu, LuParams};
//! use scd::machine::{Machine, MachineConfig};
//! use scd::core::Scheme;
//!
//! // A small LU factorization on an 8-cluster machine with Dir3CV2.
//! let app = lu(&LuParams { n: 16, update_cost: 2 }, 8, 1);
//! let mut cfg = MachineConfig::paper_32().with_scheme(Scheme::dir_cv(3, 2));
//! cfg.clusters = 8;
//! let stats = Machine::new(cfg, app.boxed_programs()).run();
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.shared_refs(), app.shared_refs());
//! ```

pub use scd_apps as apps;
pub use scd_check as check;
pub use scd_core as core;
pub use scd_machine as machine;
pub use scd_mem as mem;
pub use scd_noc as noc;
pub use scd_protocol as protocol;
pub use scd_sim as sim;
pub use scd_stats as stats;
pub use scd_tango as tango;
pub use scd_trace as trace;
