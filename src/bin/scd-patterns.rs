//! Sharing-pattern report from a recorded transaction trace.
//!
//! Replays a `scdsim --trace-out` JSONL file through the
//! [`scd::trace::PatternTable`] classifier and renders the directory
//! observatory's view of the run: per-class block counts (Weber–Gupta
//! taxonomy), the busiest blocks with their classified lifecycle, and
//! the measured invalidation distribution (Figure-2 data from a real
//! run). The classifier is a pure function of the event stream, so this
//! replay produces byte-identical classifier/invalidation sections to
//! the online `scdsim --patterns-out` path — `--compare` checks exactly
//! that, and CI runs it on every push.
//!
//! ```text
//! scd-patterns <trace.jsonl> [--out <patterns.json>]
//!              [--compare <patterns.json>] [--json]
//! ```

use scd::stats::table::{render_bars, render_table, Align};
use scd::trace::{Json, PatternTable};
use std::process::exit;

const HELP: &str = "\
scd-patterns: classify sharing patterns from a recorded trace

usage: scd-patterns <trace.jsonl> [--out <file>] [--compare <file>] [--json]

  <trace.jsonl>    transaction trace recorded with scdsim --trace-out
                   (the trace must have been recorded with --patterns-out
                   also active, so it carries inval events)
  --out <file>     write the scd-patterns/v1 document (occupancy is null:
                   a replay cannot see live directory state)
  --compare <file> parse an online document (scdsim --patterns-out) and
                   check its classifier + invalidation sections are
                   byte-identical to this replay's; exits 1 on mismatch
  --json           print the document to stdout instead of the report
  -h, --help       show this help
";

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("scd-patterns: cannot read {path}: {e}");
            exit(2);
        }
    }
}

/// The three stream-derived sections of a patterns document, as one
/// canonical string — the unit of online-vs-replay comparison.
fn stream_sections(doc: &Json) -> Result<String, String> {
    let mut j = Json::obj();
    for key in ["thresholds", "classifier", "invalidations"] {
        j.set(key, doc.get(key).cloned().ok_or_else(|| format!("missing `{key}`"))?);
    }
    Ok(j.to_string())
}

fn render_report(table: &PatternTable) -> String {
    let mut out = String::new();

    let classes: Vec<Vec<String>> = table
        .class_counts()
        .into_iter()
        .map(|(label, count)| {
            let pct = if table.tracked_blocks() == 0 {
                0.0
            } else {
                100.0 * count as f64 / table.tracked_blocks() as f64
            };
            vec![label.to_string(), count.to_string(), format!("{pct:.1}%")]
        })
        .collect();
    out.push_str(&render_table(
        &["class", "blocks", "share"],
        &[Align::Left],
        &classes,
    ));
    out.push_str(&format!(
        "\n{} events observed, {} blocks tracked\n\n",
        table.events(),
        table.tracked_blocks()
    ));

    let dist = table.inval_dist();
    if dist.iter().any(|&n| n > 0) {
        let rows: Vec<(String, f64)> = dist
            .iter()
            .enumerate()
            .map(|(n, &count)| (format!("{n} inv"), count as f64))
            .collect();
        out.push_str(&render_bars(
            &format!(
                "invalidation distribution (mean {:.2} per decision)",
                table.inval_mean()
            ),
            &rows,
            40,
        ));
        out.push('\n');
    } else {
        out.push_str("no invalidation events in trace (recorded without --patterns-out?)\n");
    }
    out
}

fn main() {
    let mut trace_path: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut compare_path: Option<String> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            "--out" | "--compare" => {
                let Some(path) = args.next() else {
                    eprintln!("scd-patterns: {arg} needs a file argument");
                    exit(2);
                };
                if arg == "--out" {
                    out_path = Some(path);
                } else {
                    compare_path = Some(path);
                }
            }
            "--json" => json = true,
            path if !path.starts_with('-') => {
                if trace_path.replace(path.to_string()).is_some() {
                    eprintln!("scd-patterns: more than one trace file given\n{HELP}");
                    exit(2);
                }
            }
            other => {
                eprintln!("scd-patterns: unknown flag {other}\n{HELP}");
                exit(2);
            }
        }
    }
    let Some(trace_path) = trace_path else {
        eprintln!("scd-patterns: no trace file given\n{HELP}");
        exit(2);
    };

    let table = match PatternTable::from_trace(&read(&trace_path)) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("scd-patterns: {trace_path}: {e}");
            exit(1);
        }
    };
    let doc = table.document(None, None);

    if let Some(path) = &out_path {
        std::fs::write(path, format!("{doc}\n")).unwrap_or_else(|e| {
            eprintln!("scd-patterns: cannot write {path}: {e}");
            exit(2);
        });
        println!("patterns written to {path}");
    }

    if json {
        println!("{doc}");
    } else {
        print!("{}", render_report(&table));
    }

    if let Some(path) = &compare_path {
        let online = match Json::parse(&read(path)) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("scd-patterns: {path}: {e}");
                exit(1);
            }
        };
        let (online_sections, replay_sections) =
            match (stream_sections(&online), stream_sections(&doc)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    eprintln!("scd-patterns: {path}: {e}");
                    exit(1);
                }
            };
        if online_sections == replay_sections {
            println!("compare: OK — replay matches {path} byte-for-byte");
        } else {
            eprintln!(
                "compare: MISMATCH — replayed classifier/invalidations differ from {path}\n\
                 online: {online_sections}\n\
                 replay: {replay_sections}"
            );
            exit(1);
        }
    }
}
