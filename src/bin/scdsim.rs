//! scdsim — command-line front end to the DASH simulator.
//!
//! ```text
//! scdsim [options]
//!   --app <lu|dwf|mp3d|locusroute>   workload            (default lu)
//!   --scheme <SPEC>                  directory scheme    (default full)
//!       full | b:<i> | nb:<i> | x:<i> | cv:<i>:<r>
//!   --protocol <dash|tardis|dls>     coherence protocol  (default dash)
//!   --clusters <n>                   cluster count       (default 32)
//!   --procs-per-cluster <n>          processors/cluster  (default 1)
//!   --shards <n>                     worker threads (byte-identical output)
//!   --scale <f>                      problem scale       (default 1.0)
//!   --seed <n>                       workload seed       (default 0xD45B)
//!   --sparse <entries>:<ways>:<lru|rand|lra>   sparse directory per home
//!   --overflow <i>:<wide>:<ways>:<lru|rand|lra>  overflow directory
//!   --serial-invalidations           SCI-style serial invalidation walk
//!   --histogram                      print the invalidation distribution
//!   --check                          verify coherence invariants at exit
//!   --max-cycles <n>                 abort past n simulated cycles
//!   --fault <spec>                   inject faults (nack:P,dup:P,delay:P:C,reorder:P:W)
//!   --watchdog <cycles>              fail if no op retires for n cycles
//!   --trace-out <path>               write the JSONL transaction trace
//!   --trace-buffer <n>               trace ring capacity per cluster
//!   --stream-out <path>              stream telemetry JSONL during the run
//!   --stats-json <path>              write scd-run-stats/v1 JSON
//!   --patterns-out <path>            write the scd-patterns/v1 directory
//!                                    observatory document
//!   --interval-stats <n>             sample traffic/occupancy every n cycles
//!   --perfetto-out <path>            write a chrome://tracing span profile
//!   --folded-out <path>              write folded stacks for flamegraphs
//!   --critical <k>                   print the top-k critical-path report
//! ```

use scd::apps::{dwf, locusroute, lu, mp3d, AppRun, DwfParams, LocusRouteParams, LuParams,
    Mp3dParams};
use scd::core::{Replacement, Scheme};
use scd::machine::{MachineConfig, ProtocolKind, ShardedMachine};
use scd::noc::FaultPlan;
use scd::trace::{analyze, to_perfetto, Json, JsonlFileSink, PatternTable, SpanTree, TraceConfig};

fn usage() -> ! {
    eprintln!("{}", HELP.trim());
    std::process::exit(2)
}

const HELP: &str = r#"
scdsim — event-driven DASH multiprocessor simulator
(Gupta/Weber/Mowry ICPP'90 reproduction)

usage: scdsim [options]
  --app <lu|dwf|mp3d|locusroute>              workload (default lu)
  --scheme <full|b:I|nb:I|x:I|cv:I:R>         directory scheme (default full)
  --protocol <dash|tardis|dls>                coherence protocol backend
                                              (default dash; tardis = lease/
                                              timestamp reads, dls = direc-
                                              toryless shared LLC)
  --clusters <n>                              cluster count (default 32)
  --procs-per-cluster <n>                     processors per cluster (default 1)
  --shards <n>                                partition the machine across n
                                              worker threads (conservative
                                              time windows; every output is
                                              byte-identical to --shards 1)
  --scale <f>                                 problem scale (default 1.0)
  --seed <n>                                  workload seed
  --sparse <entries>:<ways>:<lru|rand|lra>    sparse directory (per home)
  --overflow <i>:<wide>:<ways>:<lru|rand|lra> overflow directory
  --serial-invalidations                      SCI-style serial invalidations
  --contention <cycles>                       mesh link occupancy (queueing)
  --hints                                     send replacement hints
  --max-cycles <n>                            abort past n simulated cycles
  --fault <spec>                              inject faults, e.g.
                                              nack:0.01 | dup:0.005 |
                                              delay:0.02:200 | reorder:0.02:100
                                              (comma-separate to combine)
  --watchdog <cycles>                         fail if no op retires for n cycles
  --trace-out <path>                          write the JSONL transaction trace
                                              (lifecycle + message events)
  --trace-buffer <n>                          trace ring capacity per cluster
                                              (default 4096 when tracing)
  --stream-out <path>                         stream telemetry JSONL while the
                                              run executes: trace events in
                                              (cycle, seq) order, interval
                                              snapshots, attribution deltas,
                                              then a run_end record (tail -f
                                              it, or point scd-top at it)
  --stats-json <path>                         write the scd-run-stats/v1
                                              document (stats + metrics +
                                              traffic attribution)
  --patterns-out <path>                       classify per-block sharing
                                              patterns (Weber/Gupta taxonomy)
                                              and write the scd-patterns/v1
                                              document: classifier + measured
                                              invalidation distribution +
                                              directory occupancy telemetry
  --interval-stats <n>                        sample traffic/retries/occupancy
                                              every n cycles, print the table
  --perfetto-out <path>                       derive the causal span tree and
                                              write a chrome trace_event JSON
                                              (open in chrome://tracing or
                                              ui.perfetto.dev)
  --folded-out <path>                         write folded stacks (flamegraph
                                              input; weights in cycles)
  --critical <k>                              print the top-k slowest
                                              transactions with per-phase
                                              queueing/service split and the
                                              blocking message on each phase
  --anatomy                                   print busy/stall breakdown
  --histogram                                 print invalidation distribution
  --check                                     verify coherence invariants
                                              (also enables the version oracle)
  --help
"#;

/// Writes the merged, cycle-ordered trace as JSONL and reports volume.
fn write_trace(machine: &ShardedMachine, path: &str) {
    use std::io::Write as _;
    let events = machine.trace_events();
    let (recorded, dropped) = machine.trace_counts();
    let mut out = std::io::BufWriter::new(match std::fs::File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        }
    });
    for ev in &events {
        writeln!(out, "{}", ev.to_json()).expect("trace write failed");
    }
    out.flush().expect("trace flush failed");
    eprintln!(
        "trace written to {path}: {} events retained ({recorded} recorded, {dropped} \
         evicted from rings)",
        events.len()
    );
}

fn parse_policy(s: &str) -> Replacement {
    match s {
        "lru" => Replacement::Lru,
        "rand" | "random" => Replacement::Random,
        "lra" => Replacement::Lra,
        _ => usage(),
    }
}

fn parse_scheme(s: &str) -> Scheme {
    let parts: Vec<&str> = s.split(':').collect();
    match parts.as_slice() {
        ["full"] => Scheme::FullVector,
        ["b", i] => Scheme::dir_b(i.parse().unwrap_or_else(|_| usage())),
        ["nb", i] => Scheme::dir_nb(i.parse().unwrap_or_else(|_| usage())),
        ["x", i] => Scheme::dir_x(i.parse().unwrap_or_else(|_| usage())),
        ["cv", i, r] => Scheme::dir_cv(
            i.parse().unwrap_or_else(|_| usage()),
            r.parse().unwrap_or_else(|_| usage()),
        ),
        _ => usage(),
    }
}

fn main() {
    let mut app_name = "lu".to_string();
    let mut scheme = Scheme::FullVector;
    let mut protocol = ProtocolKind::Dash;
    let mut clusters = 32usize;
    let mut ppc = 1usize;
    let mut shards = 1usize;
    let mut scale = 1.0f64;
    let mut seed = 0xD45Bu64;
    let mut sparse: Option<(usize, usize, Replacement)> = None;
    let mut overflow: Option<(usize, usize, usize, Replacement)> = None;
    let mut serial = false;
    let mut contention: Option<u64> = None;
    let mut hints = false;
    let mut anatomy = false;
    let mut histogram = false;
    let mut check = false;
    let mut max_cycles: Option<u64> = None;
    let mut fault: Option<FaultPlan> = None;
    let mut watchdog = 0u64;
    let mut trace_out: Option<String> = None;
    let mut trace_buffer: Option<usize> = None;
    let mut stream_out: Option<String> = None;
    let mut critical: Option<usize> = None;
    let mut stats_json: Option<String> = None;
    let mut patterns_out: Option<String> = None;
    let mut interval: u64 = 0;
    let mut perfetto_out: Option<String> = None;
    let mut folded_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--app" => app_name = val(),
            "--scheme" => scheme = parse_scheme(&val()),
            "--protocol" => {
                protocol = ProtocolKind::parse(&val()).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                })
            }
            "--clusters" => clusters = val().parse().unwrap_or_else(|_| usage()),
            "--procs-per-cluster" => ppc = val().parse().unwrap_or_else(|_| usage()),
            "--shards" => shards = val().parse().unwrap_or_else(|_| usage()),
            "--scale" => scale = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--sparse" => {
                let v = val();
                let p: Vec<&str> = v.split(':').collect();
                if p.len() != 3 {
                    usage()
                }
                sparse = Some((
                    p[0].parse().unwrap_or_else(|_| usage()),
                    p[1].parse().unwrap_or_else(|_| usage()),
                    parse_policy(p[2]),
                ));
            }
            "--overflow" => {
                let v = val();
                let p: Vec<&str> = v.split(':').collect();
                if p.len() != 4 {
                    usage()
                }
                overflow = Some((
                    p[0].parse().unwrap_or_else(|_| usage()),
                    p[1].parse().unwrap_or_else(|_| usage()),
                    p[2].parse().unwrap_or_else(|_| usage()),
                    parse_policy(p[3]),
                ));
            }
            "--serial-invalidations" => serial = true,
            "--contention" => contention = Some(val().parse().unwrap_or_else(|_| usage())),
            "--max-cycles" => max_cycles = Some(val().parse().unwrap_or_else(|_| usage())),
            "--fault" => {
                let v = val();
                fault = Some(FaultPlan::parse(&v).unwrap_or_else(|e| {
                    eprintln!("bad --fault spec {v:?}: {e}");
                    std::process::exit(2)
                }));
            }
            "--watchdog" => watchdog = val().parse().unwrap_or_else(|_| usage()),
            "--trace-out" => trace_out = Some(val()),
            "--trace-buffer" => {
                trace_buffer = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--stream-out" => stream_out = Some(val()),
            "--critical" => critical = Some(val().parse().unwrap_or_else(|_| usage())),
            "--stats-json" => stats_json = Some(val()),
            "--patterns-out" => patterns_out = Some(val()),
            "--interval-stats" => interval = val().parse().unwrap_or_else(|_| usage()),
            "--perfetto-out" => perfetto_out = Some(val()),
            "--folded-out" => folded_out = Some(val()),
            "--hints" => hints = true,
            "--anatomy" => anatomy = true,
            "--histogram" => histogram = true,
            "--check" => check = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut cfg = MachineConfig::paper_32()
        .with_scheme(scheme)
        .with_protocol(protocol);
    cfg.clusters = clusters;
    cfg.procs_per_cluster = ppc;
    cfg.serial_invalidations = serial;
    cfg.link_occupancy = contention;
    cfg.replacement_hints = hints;
    cfg.check_invariants = check;
    cfg.track_versions = check;
    if let Some(n) = max_cycles {
        cfg.max_cycles = n;
    }
    cfg.fault_plan = fault;
    cfg.watchdog_cycles = watchdog;
    // Tracing: a trace file or span profile wants the full event stream;
    // a stats file or interval sampling only needs the metrics registry.
    // Any telemetry request also turns on traffic attribution (counters
    // only — the run stays bit-identical).
    let want_metrics = stats_json.is_some() || interval > 0;
    // The sharing-pattern classifier consumes txn_begin/inval events, so
    // --patterns-out implies full event recording and the patterns flag.
    let want_events =
        trace_out.is_some() || trace_buffer.is_some() || perfetto_out.is_some()
            || folded_out.is_some() || stream_out.is_some() || critical.is_some()
            || patterns_out.is_some();
    if want_events || want_metrics {
        let mut tc = if want_events {
            TraceConfig::full(trace_buffer.unwrap_or(4096))
        } else {
            TraceConfig::none()
        };
        tc.metrics = tc.metrics || want_metrics;
        tc.interval = interval;
        tc.attribution = true;
        tc.patterns = patterns_out.is_some();
        if tc.patterns && tc.interval == 0 {
            // Occupancy sampling runs at interval boundaries; give the
            // observatory a time base when the user didn't pick one.
            tc.interval = 10_000;
        }
        cfg = cfg.with_trace(tc);
    }
    if let Some((entries, ways, policy)) = sparse {
        cfg = cfg.with_sparse(entries, ways, policy);
    }
    if let Some((i, wide, ways, policy)) = overflow {
        cfg = cfg.with_overflow(i, wide, ways, policy);
    }

    let procs = cfg.processors();
    let app: AppRun = match app_name.as_str() {
        "lu" => lu(&LuParams::scaled(scale), procs, seed),
        "dwf" => dwf(&DwfParams::scaled(scale), procs, seed),
        "mp3d" => mp3d(&Mp3dParams::scaled(scale), procs, seed),
        "locusroute" => locusroute(&LocusRouteParams::scaled(scale), procs, seed),
        _ => usage(),
    };

    println!(
        "{}: {} procs ({} clusters x {}), scheme {}{}, {} shared refs",
        app.name,
        procs,
        cfg.clusters,
        cfg.procs_per_cluster,
        cfg.scheme.name(cfg.clusters),
        if protocol == ProtocolKind::Dash {
            String::new()
        } else {
            format!(", protocol {}", protocol.name())
        },
        app.shared_refs(),
    );
    // The `protocol` meta key appears only off the DASH default, so every
    // pre-protocol document (BENCH baselines included) stays byte-stable.
    let mut run_meta = Json::obj()
        .with("app", Json::Str(app.name.to_string()))
        .with("scheme", Json::Str(cfg.scheme.name(cfg.clusters)));
    if protocol != ProtocolKind::Dash {
        run_meta = run_meta.with("protocol", Json::Str(protocol.name().into()));
    }
    let run_meta = run_meta
        .with("clusters", Json::U64(cfg.clusters as u64))
        .with("procs_per_cluster", Json::U64(cfg.procs_per_cluster as u64))
        .with("seed", Json::U64(seed))
        .with("scale", Json::F64(scale));

    let wall = std::time::Instant::now();
    let mut machine =
        ShardedMachine::new(cfg, app.boxed_programs(), shards).unwrap_or_else(|e| {
            eprintln!("cannot shard this configuration: {e}");
            std::process::exit(2)
        });
    if let Some(path) = &stream_out {
        let sink = match JsonlFileSink::create(std::path::Path::new(path)) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open {path} for streaming: {e}");
                std::process::exit(1)
            }
        };
        machine.attach_stream(Box::new(sink), Some(run_meta.clone()));
    }
    let result = machine.try_run();
    if let Some(path) = &stream_out {
        // try_run closed the stream on both exits (run_end is written even
        // when the run failed), so the file is complete here.
        eprintln!("telemetry stream written to {path}");
    }
    // The transaction trace (and the span profile derived from it) is
    // most valuable exactly when the run failed: write both before
    // bailing out.
    if let Some(path) = &trace_out {
        write_trace(&machine, path);
    }
    if let Some(path) = &patterns_out {
        // Online classification: feed the retained events through the
        // same single code path the replay tool uses, so the two outputs
        // are byte-identical for the same event history.
        let mut table = PatternTable::new();
        for ev in machine.trace_events() {
            table.observe_event(&ev.to_json());
        }
        let doc = table.document(Some(run_meta.clone()), machine.occupancy_json());
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        }
        eprintln!(
            "patterns written to {path}: {} blocks classified over {} events",
            table.tracked_blocks(),
            table.events(),
        );
    }
    if perfetto_out.is_some() || folded_out.is_some() || critical.is_some() {
        let events = machine.trace_events();
        let tree = SpanTree::from_events(&events);
        if let Some(path) = &perfetto_out {
            let doc = to_perfetto(&tree, &machine.metrics().intervals);
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1)
            }
            eprintln!(
                "span profile written to {path}: {} txns ({} complete), \
                 {} attributed msgs, {} background msgs",
                tree.txns.len(),
                tree.completed(),
                tree.attributed_msgs(),
                tree.orphan_msgs.len()
            );
        }
        if let Some(path) = &folded_out {
            if let Err(e) = std::fs::write(path, tree.to_folded()) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1)
            }
            eprintln!("folded stacks written to {path}");
        }
        if let Some(k) = critical {
            // Printed before the failure bail-out below: the slowest
            // transactions are most interesting when the run went wrong.
            print!("{}", analyze(&tree).render(k));
        }
    }
    let stats = match result {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("simulation failed ({})", e.kind());
            eprintln!("{e}");
            std::process::exit(1)
        }
    };
    if let Some(path) = &stats_json {
        let doc = stats.to_json_document(
            Some(run_meta.clone()),
            want_metrics.then(|| machine.metrics()),
            machine.attribution_json(stats.cycles),
            machine.trace_json(),
            patterns_out.is_some().then(|| {
                let mut table = PatternTable::new();
                for ev in machine.trace_events() {
                    table.observe_event(&ev.to_json());
                }
                table.section_json()
            }),
        );
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1)
        }
        eprintln!("stats written to {path}");
    }
    println!(
        "simulated {} cycles in {:.2}s wall ({:.0} events-ish/s)",
        stats.cycles,
        wall.elapsed().as_secs_f64(),
        stats.shared_refs() as f64 / wall.elapsed().as_secs_f64(),
    );
    println!("traffic: {}", stats.traffic);
    println!(
        "invalidation events: {} (avg {:.2}/event), L2 misses: {}, mean hops: {:.2}",
        stats.invalidations.events(),
        stats.invalidations.mean(),
        stats.l2_misses,
        stats.network.mean_hops(),
    );
    if let Some(sp) = stats.sparse {
        println!(
            "sparse directory: {} hits, {} misses, {} fills, {} replacements",
            sp.hits, sp.misses, sp.fills, sp.replacements
        );
    }
    if let Some(t) = stats.tardis {
        println!(
            "tardis: {} lease fills, {} renewals ({} declined into refetch), \
             {} write-throughs",
            t.lease_fills, t.renewals, t.renew_refetches, t.write_throughs
        );
    }
    if let Some(d) = stats.dls {
        println!("dls: {} LLC fills, {} LLC writes", d.llc_fills, d.llc_writes);
    }
    if let Some(o) = stats.overflow {
        println!(
            "overflow directory: {} promotions, {} demotions, {} displacements, {} fallbacks",
            o.promotions, o.demotions, o.displacements, o.fallback_evictions
        );
    }
    if stats.sync_ops > 0 {
        println!(
            "sync: {} ops, {} lock grants, {} lock retries",
            stats.sync_ops, stats.lock_metrics.0, stats.lock_metrics.1
        );
    }
    if stats.faults != Default::default() {
        let f = stats.faults;
        println!(
            "faults: {} nacks, {} retries, {} duplicates, {} strays dropped, \
             {} delay spikes, {} reorders",
            f.nacks, f.retries, f.duplicates, f.strays_dropped, f.delay_spikes, f.reorders
        );
    }
    if anatomy {
        let (busy, mem, sync) = stats.stalls.fractions();
        println!(
            "anatomy: {:.1}% busy, {:.1}% memory stall, {:.1}% sync stall",
            busy * 100.0,
            mem * 100.0,
            sync * 100.0
        );
        if stats.network.contention_cycles > 0 {
            println!(
                "network queueing: {} link-wait cycles",
                stats.network.contention_cycles
            );
        }
    }
    if want_metrics {
        let m = machine.metrics();
        println!(
            "latency: {} txns, read p50/p99 {}/{}, write p50/p99 {}/{}",
            m.transactions(),
            m.read_latency.percentile(0.50),
            m.read_latency.percentile(0.99),
            m.write_latency.percentile(0.50),
            m.write_latency.percentile(0.99),
        );
    }
    if interval > 0 {
        println!();
        print!("{}", machine.metrics().render_intervals());
    }
    if histogram {
        println!();
        print!(
            "{}",
            stats
                .invalidations
                .render("invalidation distribution", 60)
        );
    }
}
