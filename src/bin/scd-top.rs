//! scd-top — live terminal dashboard for a telemetry stream.
//!
//! Tails a JSONL stream file written by `scdsim --stream-out` or
//! `scd-sweep --stream-out` *while the producer is still running*: only
//! complete lines are consumed (a partially written tail line is left in
//! the buffer for the next poll), so the reader never trips over the
//! writer. Each refresh renders one full-screen frame:
//!
//! - throughput: simulated cycles/s, trace events/s, refs (ops retired)/s
//! - transaction phase latencies: p50/p90/p99 per phase, plus end-to-end
//! - retry / NACK / fault-recovery counters
//! - a per-link traffic heatmap accumulated from attribution deltas
//! - sweep progress (completed/total, elapsed, ETA) when following a
//!   sweep stream
//!
//! The dashboard exits on its own once the stream closes (`run_end` /
//! `sweep_end`). `--once` renders a single frame from the current file
//! contents and exits — that mode is what CI uses, and it also works on
//! a finished stream as a post-mortem summary.
//!
//! ```text
//! scd-top <stream.jsonl> [--once] [--refresh-ms <n>] [--top-links <n>]
//! ```

use scd::stats::Histogram;
use scd::trace::Json;
use std::collections::HashMap;
use std::io::Read as _;

const HELP: &str = "\
scd-top: live dashboard over an scd telemetry stream (JSONL)

usage: scd-top <stream.jsonl> [options]

  --once            render one frame from the current file contents and
                    exit (no screen clearing; what CI uses)
  --refresh-ms <n>  poll/redraw period in milliseconds (default 500)
  --top-links <n>   rows in the link-traffic table when the machine is too
                    big for the matrix heatmap (default 10)
  -h, --help        show this help
";

fn usage_err(msg: &str) -> ! {
    eprintln!("scd-top: {msg}\n{HELP}");
    std::process::exit(2);
}

/// Incrementally consumes a growing JSONL file, yielding complete lines.
struct Tail {
    file: std::fs::File,
    /// Bytes read but not yet terminated by a newline.
    partial: Vec<u8>,
}

impl Tail {
    fn open(path: &str) -> std::io::Result<Self> {
        Ok(Tail {
            file: std::fs::File::open(path)?,
            partial: Vec::new(),
        })
    }

    /// Reads whatever the producer has appended since the last poll and
    /// returns the complete lines therein.
    fn poll(&mut self) -> Vec<String> {
        let mut buf = Vec::new();
        // The producer only ever appends; the file cursor stays where the
        // last poll left it, and a read error mid-follow is treated as
        // "nothing new yet".
        if self.file.read_to_end(&mut buf).is_err() {
            return Vec::new();
        }
        self.partial.extend_from_slice(&buf);
        // Split once at the last newline and slice the complete region in
        // a single pass. (Splitting the buffer per line was quadratic in
        // the poll size — a first poll over a multi-megabyte stream, the
        // CI --once case, recopied the whole remainder for every line.)
        let Some(last_nl) = self.partial.iter().rposition(|&b| b == b'\n') else {
            return Vec::new();
        };
        let rest = self.partial.split_off(last_nl + 1);
        let complete = std::mem::replace(&mut self.partial, rest);
        complete
            .split(|&b| b == b'\n')
            .filter(|line| !line.is_empty())
            .filter_map(|line| std::str::from_utf8(line).ok())
            .filter(|s| !s.trim().is_empty())
            .map(str::to_string)
            .collect()
    }
}

/// Everything the dashboard knows, folded over the stream so far.
#[derive(Default)]
struct Dash {
    /// `run` object from the `run_meta` record, if one was seen.
    run: Option<Json>,
    clusters: usize,
    /// Highest simulated cycle observed (events, intervals, run_end).
    cycle: u64,
    /// Trace-event lines consumed, by event type.
    by_type: HashMap<String, u64>,
    events: u64,
    /// Ops retired, summed over interval records ("refs" for rate math).
    ops_retired: u64,
    /// Open transactions: txn id -> (current phase name, phase start).
    open: HashMap<u64, (String, u64)>,
    /// Cycle-latency histograms per phase name, plus end-to-end.
    phase_lat: Vec<(String, Histogram)>,
    total_lat: Histogram,
    retries_total: u64,
    /// Flits per (src, dst), accumulated from attribution deltas.
    links: HashMap<(usize, usize), u64>,
    /// Latest directory-observatory sample: live entries and the
    /// sharer-count histogram (`sharers[n]` = live entries with `n`
    /// sharers), plus how many samples the stream carried so far.
    live_entries: u64,
    sharers: Vec<u64>,
    patterns_samples: u64,
    /// Sweep progress: (completed, total, elapsed, eta) from the latest
    /// `sweep_run`, total seeded by `sweep_begin`.
    sweep: Option<(u64, u64, f64, f64)>,
    closed: bool,
    /// Summary line from `run_end` / `sweep_end`, rendered in the footer.
    close_line: String,
}

impl Dash {
    fn phase_hist(&mut self, name: &str) -> &mut Histogram {
        if let Some(i) = self.phase_lat.iter().position(|(n, _)| n == name) {
            return &mut self.phase_lat[i].1;
        }
        self.phase_lat.push((name.to_string(), Histogram::new()));
        &mut self.phase_lat.last_mut().unwrap().1
    }

    fn ingest(&mut self, line: &str) {
        let Ok(j) = Json::parse(line) else { return };
        let ty = j.get("type").and_then(Json::as_str).unwrap_or("").to_string();
        if let Some(cycle) = j.get("cycle").and_then(Json::as_u64) {
            self.cycle = self.cycle.max(cycle);
        }
        match ty.as_str() {
            "run_meta" => {
                self.clusters = j
                    .get("run")
                    .and_then(|r| r.get("clusters"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0) as usize;
                self.run = j.get("run").cloned();
            }
            "interval" => {
                if let Some(w) = j.get("window") {
                    self.cycle = self.cycle.max(w.get("end").and_then(Json::as_u64).unwrap_or(0));
                    self.ops_retired += w.get("ops_retired").and_then(Json::as_u64).unwrap_or(0);
                }
            }
            "attrib_delta" => {
                if let Some(links) = j.get("links").and_then(Json::as_arr) {
                    for l in links {
                        let (Some(from), Some(to), Some(flits)) = (
                            l.get("from").and_then(Json::as_u64),
                            l.get("to").and_then(Json::as_u64),
                            l.get("flits").and_then(Json::as_u64),
                        ) else {
                            continue;
                        };
                        *self.links.entry((from as usize, to as usize)).or_insert(0) += flits;
                    }
                }
            }
            "patterns" => {
                self.cycle = self
                    .cycle
                    .max(j.get("end").and_then(Json::as_u64).unwrap_or(0));
                self.live_entries = j.get("live_entries").and_then(Json::as_u64).unwrap_or(0);
                if let Some(sharers) = j.get("sharers").and_then(Json::as_arr) {
                    self.sharers = sharers.iter().filter_map(Json::as_u64).collect();
                }
                self.patterns_samples += 1;
            }
            "run_end" => {
                self.closed = true;
                let cycles = j.get("cycles").and_then(Json::as_u64).unwrap_or(0);
                let rec = j.get("recorded").and_then(Json::as_u64).unwrap_or(0);
                let drop = j.get("dropped_events").and_then(Json::as_u64).unwrap_or(0);
                self.cycle = self.cycle.max(cycles);
                self.close_line = format!(
                    "run complete: {cycles} cycles, {rec} events recorded, {drop} dropped"
                );
            }
            "sweep_begin" => {
                let total = j.get("total").and_then(Json::as_u64).unwrap_or(0);
                self.sweep = Some((0, total, 0.0, 0.0));
            }
            "sweep_run" => {
                self.sweep = Some((
                    j.get("completed").and_then(Json::as_u64).unwrap_or(0),
                    j.get("total").and_then(Json::as_u64).unwrap_or(0),
                    j.get("elapsed").and_then(Json::as_f64).unwrap_or(0.0),
                    j.get("eta").and_then(Json::as_f64).unwrap_or(0.0),
                ));
            }
            "sweep_end" => {
                self.closed = true;
                let runs = j.get("runs").and_then(Json::as_u64).unwrap_or(0);
                let wall = j.get("wall_seconds").and_then(Json::as_f64).unwrap_or(0.0);
                self.close_line = format!("sweep complete: {runs} runs in {wall:.2}s");
            }
            // Everything else is a trace-event line.
            _ => {
                self.events += 1;
                *self.by_type.entry(ty.clone()).or_insert(0) += 1;
                let cycle = j.get("cycle").and_then(Json::as_u64).unwrap_or(0);
                let txn = j.get("txn").and_then(Json::as_u64);
                match (ty.as_str(), txn) {
                    ("txn_begin", Some(txn)) => {
                        self.open.insert(txn, ("issue".to_string(), cycle));
                    }
                    ("txn_phase", Some(txn)) => {
                        let phase = j
                            .get("phase")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_string();
                        if let Some((prev, start)) =
                            self.open.insert(txn, (phase, cycle))
                        {
                            let d = cycle.saturating_sub(start) as usize;
                            self.phase_hist(&prev).record(d);
                        }
                    }
                    ("txn_end", Some(txn)) => {
                        if let Some((prev, start)) = self.open.remove(&txn) {
                            let d = cycle.saturating_sub(start) as usize;
                            self.phase_hist(&prev).record(d);
                        }
                        if let Some(lat) = j.get("latency").and_then(Json::as_u64) {
                            self.total_lat.record(lat as usize);
                        }
                        self.retries_total +=
                            j.get("retries").and_then(Json::as_u64).unwrap_or(0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn render(&self, elapsed: f64, top_links: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let rate = |n: u64| n as f64 / elapsed.max(1e-9);
        if let Some(run) = &self.run {
            let f = |k: &str| run.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
            let _ = writeln!(
                s,
                "scd-top — {} on {} ({} clusters)",
                f("app"),
                f("scheme"),
                run.get("clusters").and_then(Json::as_u64).unwrap_or(0)
            );
        } else {
            let _ = writeln!(s, "scd-top — waiting for stream (no run_meta / sweep records yet)");
        }
        let _ = writeln!(
            s,
            "cycle {:>12}  |  {:>9.0} cycles/s  {:>9.0} events/s  {:>9.0} refs/s",
            self.cycle,
            rate(self.cycle),
            rate(self.events),
            rate(self.ops_retired),
        );

        let nack = self.by_type.get("nack").copied().unwrap_or(0);
        let retry = self.by_type.get("retry").copied().unwrap_or(0);
        let repl = self.by_type.get("replacement").copied().unwrap_or(0);
        let _ = writeln!(
            s,
            "events {:>10}  |  {} nacks, {} retry msgs, {} txn retries, {} replacements",
            self.events, nack, retry, self.retries_total, repl
        );

        if self.total_lat.events() > 0 {
            let _ = writeln!(s, "\nlatency (cycles)        p50      p90      p99      max  txns");
            let row = |s: &mut String, name: &str, h: &Histogram| {
                let _ = writeln!(
                    s,
                    "  {:<18} {:>8} {:>8} {:>8} {:>8} {:>5}",
                    name,
                    h.percentile(0.50),
                    h.percentile(0.90),
                    h.percentile(0.99),
                    h.max_value(),
                    h.events()
                );
            };
            row(&mut s, "end-to-end", &self.total_lat);
            for (name, h) in &self.phase_lat {
                row(&mut s, name, h);
            }
        }

        if !self.links.is_empty() {
            let _ = writeln!(s, "\nlink traffic (flits, from attribution deltas)");
            if self.clusters > 0 && self.clusters <= 16 {
                // Matrix heatmap: rows = source, columns = destination.
                let max = self.links.values().copied().max().unwrap_or(1).max(1);
                const SHADE: &[u8] = b" .:-=+*#%@";
                let _ = write!(s, "     ");
                for d in 0..self.clusters {
                    let _ = write!(s, "{:>2}", d % 100);
                }
                let _ = writeln!(s, "   (shade ~ flits, max {max})");
                for src in 0..self.clusters {
                    let _ = write!(s, "  {src:>2} ");
                    for dst in 0..self.clusters {
                        let v = self.links.get(&(src, dst)).copied().unwrap_or(0);
                        let idx = if v == 0 {
                            0
                        } else {
                            1 + (v * (SHADE.len() as u64 - 2) / max) as usize
                        };
                        let c = SHADE[idx.min(SHADE.len() - 1)] as char;
                        let _ = write!(s, " {c}");
                    }
                    let _ = writeln!(s);
                }
            } else {
                let mut rows: Vec<(&(usize, usize), &u64)> = self.links.iter().collect();
                rows.sort_by_key(|(&(src, dst), &v)| (std::cmp::Reverse(v), src, dst));
                for (&(src, dst), &v) in rows.into_iter().take(top_links) {
                    let _ = writeln!(s, "  {src:>3} -> {dst:>3}  {v:>12}");
                }
            }
        }

        if self.patterns_samples > 0 {
            let _ = writeln!(
                s,
                "\nsharer distribution (window {}, {} live entries, sample {})",
                self.cycle, self.live_entries, self.patterns_samples
            );
            let max = self.sharers.iter().copied().max().unwrap_or(0).max(1);
            const BAR: usize = 30;
            for (n, &count) in self.sharers.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let fill = ((count * BAR as u64) / max) as usize;
                let _ = writeln!(
                    s,
                    "  {:>3} sharers {:>8}  {}",
                    n,
                    count,
                    "#".repeat(fill.max(1))
                );
            }
        }

        if let Some((done, total, elapsed, eta)) = self.sweep {
            let width = 40usize;
            let fill = if total == 0 {
                0
            } else {
                (done as usize * width) / total as usize
            };
            let _ = writeln!(
                s,
                "\nsweep [{}{}] {done}/{total}  {elapsed:.1}s elapsed, eta {eta:.1}s",
                "#".repeat(fill),
                "-".repeat(width - fill),
            );
        }

        if self.closed {
            let _ = writeln!(s, "\n{}", self.close_line);
        }
        s
    }
}

fn main() {
    let mut path: Option<String> = None;
    let mut once = false;
    let mut refresh_ms = 500u64;
    let mut top_links = 10usize;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| usage_err(&format!("{arg} needs a value")))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            "--once" => once = true,
            "--refresh-ms" => {
                refresh_ms = val()
                    .parse()
                    .unwrap_or_else(|_| usage_err("bad --refresh-ms"));
            }
            "--top-links" => {
                top_links = val()
                    .parse()
                    .unwrap_or_else(|_| usage_err("bad --top-links"));
            }
            p if !p.starts_with('-') && path.is_none() => path = Some(p.to_string()),
            other => usage_err(&format!("unexpected argument {other}")),
        }
    }
    let Some(path) = path else {
        usage_err("need a stream file to follow");
    };

    // The producer may not have created the file yet. In follow mode,
    // wait for it (bounded so a typo'd path fails rather than hanging
    // forever); in --once mode a not-yet-created stream is the same
    // "waiting" state as an empty one — render the waiting frame and
    // exit cleanly so CI probes racing the producer don't flake.
    let t0 = std::time::Instant::now();
    let mut tail = loop {
        match Tail::open(&path) {
            Ok(t) => break t,
            Err(_) if once => {
                print!(
                    "{}",
                    Dash::default().render(t0.elapsed().as_secs_f64(), top_links)
                );
                return;
            }
            Err(e) => {
                if t0.elapsed().as_secs() > 30 {
                    eprintln!("scd-top: cannot open {path}: {e}");
                    std::process::exit(1);
                }
                std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
            }
        }
    };

    let mut dash = Dash::default();
    loop {
        for line in tail.poll() {
            dash.ingest(&line);
        }
        let frame = dash.render(t0.elapsed().as_secs_f64(), top_links);
        if once {
            print!("{frame}");
            return;
        }
        // Home + clear-to-end keeps redraws flicker-free without needing
        // a full terminal library.
        print!("\x1b[H\x1b[2J{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        if dash.closed {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(refresh_ms));
    }
}
