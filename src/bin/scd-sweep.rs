//! scd-sweep — deterministic parallel sweep runner.
//!
//! Runs a grid of apps × directory schemes × sparse configurations ×
//! seeds on a worker pool (`bench::sweep`) and writes the aggregated
//! `scd-sweep/v1` document. Everything except the wall-clock `timing`
//! section is byte-identical whatever `--jobs` was, so
//! `scd-sweep --no-timing` output can be `cmp`-ed across thread counts —
//! the CI determinism check does exactly that.

use bench::{
    generate_app, run_sweep_with, sweep_begin_record, sweep_document, sweep_end_record,
    write_bench_json_in, SparseVariant, SweepSpec,
};
use scd::core::Scheme;
use scd::machine::ProtocolKind;
use scd::trace::{JsonlFileSink, TraceSink};
use std::io::IsTerminal;

const HELP: &str = "\
scd-sweep: run an app x scheme x sparse x seed grid on a worker pool

usage: scd-sweep [options]

  --jobs <n>          worker threads across grid points
                      (default: all hardware threads)
  --shards <n>        worker threads *inside* each machine (conservative
                      time-window partitioning; results are byte-identical
                      to --shards 1, so this only changes wall-clock).
                      Composes with --jobs: total threads ~ jobs x shards
                      (default 1)
  --apps <a,..>       lu,dwf,mp3d,locusroute (default: all four)
  --schemes <s,..>    full | b:I | nb:I | x:I | cv:I:R
                      (default: full,cv:3:2,b:3,nb:3 — the paper's SS5 suite)
  --sparse <v,..>     full | <factor>:<ways>:<lru|rand|lra>
                      (default: full; e.g. full,2:4:rand adds the SS6.3 point)
  --seeds <n,..>      workload seeds (default: 54363 = 0xD45B)
  --protocol <p,..>   coherence protocol backends: dash | tardis | dls
                      (default: dash; a multi-protocol list multiplies the
                      grid so one sweep compares the families on identical
                      reference streams)
  --scale <f>         problem scale in (0, 1] (default 1.0)
  --clusters <n>      cluster count, one processor each (default 32)
  --out <path>        write the scd-sweep/v1 document (default: stdout)
  --bench-out <dir>   also write per-run BENCH_<app>_<scheme>.json points
  --stream-out <path> publish live sweep progress as JSONL while the grid
                      runs (sweep_begin, one sweep_run per finished point,
                      sweep_end; point scd-top at it for a dashboard)
  --no-timing         omit the wall-clock timing section (byte-deterministic
                      output for determinism checks)
  --trajectory        shorthand for the perf-trajectory grid: all apps,
                      cv:4:4, sparse full,2:4:rand, seed 0xD45B, 32 clusters
  -h, --help          show this help
";

fn usage_err(msg: &str) -> ! {
    eprintln!("scd-sweep: {msg}\n{HELP}");
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> Scheme {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |v: &str| -> usize {
        v.parse()
            .unwrap_or_else(|_| usage_err(&format!("bad scheme spec `{s}`")))
    };
    match parts.as_slice() {
        ["full"] => Scheme::FullVector,
        ["b", i] => Scheme::dir_b(num(i)),
        ["nb", i] => Scheme::dir_nb(num(i)),
        ["x", i] => Scheme::dir_x(num(i)),
        ["cv", i, r] => Scheme::dir_cv(num(i), num(r)),
        _ => usage_err(&format!("bad scheme spec `{s}`")),
    }
}

fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| usage_err(&format!("bad seed `{s}`")))
}

fn split_list(s: &str) -> Vec<&str> {
    s.split(',').map(str::trim).filter(|p| !p.is_empty()).collect()
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut spec = SweepSpec {
        apps: bench::APP_NAMES.iter().map(|s| s.to_string()).collect(),
        schemes: vec![
            Scheme::FullVector,
            Scheme::dir_cv(3, 2),
            Scheme::dir_b(3),
            Scheme::dir_nb(3),
        ],
        sparse: vec![SparseVariant::Full],
        seeds: vec![0xD45B],
        protocols: vec![ProtocolKind::Dash],
        scale: 1.0,
        clusters: 32,
        shards: 1,
    };
    let mut out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut stream_out: Option<String> = None;
    let mut timing = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| usage_err(&format!("{arg} needs a value")))
        };
        match arg.as_str() {
            "--jobs" => {
                let v = val();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => jobs = Some(n),
                    _ => usage_err(&format!("bad --jobs `{v}` (want an integer >= 1)")),
                }
            }
            "--shards" => {
                let v = val();
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => spec.shards = n,
                    _ => usage_err(&format!("bad --shards `{v}` (want an integer >= 1)")),
                }
            }
            "--apps" => {
                spec.apps = split_list(&val()).iter().map(|s| s.to_string()).collect();
            }
            "--schemes" => {
                spec.schemes = split_list(&val()).iter().map(|s| parse_scheme(s)).collect();
            }
            "--sparse" => {
                spec.sparse = split_list(&val())
                    .iter()
                    .map(|s| SparseVariant::parse(s).unwrap_or_else(|e| usage_err(&e)))
                    .collect();
            }
            "--seeds" => {
                spec.seeds = split_list(&val()).iter().map(|s| parse_seed(s)).collect();
            }
            "--protocol" => {
                spec.protocols = split_list(&val())
                    .iter()
                    .map(|p| ProtocolKind::parse(p).unwrap_or_else(|e| usage_err(&e)))
                    .collect();
            }
            "--scale" => {
                let v = val();
                match v.parse::<f64>() {
                    Ok(f) if f > 0.0 && f <= 1.0 => spec.scale = f,
                    _ => usage_err(&format!("bad --scale `{v}` (want 0 < f <= 1)")),
                }
            }
            "--clusters" => {
                let v = val();
                match v.parse::<usize>() {
                    Ok(n) if n >= 2 => spec.clusters = n,
                    _ => usage_err(&format!("bad --clusters `{v}`")),
                }
            }
            "--out" => out = Some(val()),
            "--bench-out" => bench_out = Some(val()),
            "--stream-out" => stream_out = Some(val()),
            "--no-timing" => timing = false,
            "--trajectory" => {
                let (scale, shards) = (spec.scale, spec.shards);
                spec = SweepSpec::trajectory(scale);
                spec.shards = shards;
                spec.sparse = vec![SparseVariant::Full, bench::CANONICAL_SPARSE];
            }
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            other => usage_err(&format!("unknown flag {other}")),
        }
    }

    for field in [
        ("apps", spec.apps.is_empty()),
        ("schemes", spec.schemes.is_empty()),
        ("sparse", spec.sparse.is_empty()),
        ("seeds", spec.seeds.is_empty()),
        ("protocol", spec.protocols.is_empty()),
    ] {
        if field.1 {
            usage_err(&format!("--{} list is empty", field.0));
        }
    }
    for app in &spec.apps {
        if generate_app(app, 2, 0, 0.01).is_none() {
            usage_err(&format!(
                "unknown app `{app}` (want one of {})",
                bench::APP_NAMES.join(",")
            ));
        }
    }

    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, usize::from)
    });
    let points = spec.apps.len()
        * spec.protocols.len()
        * spec.schemes.len()
        * spec.sparse.len()
        * spec.seeds.len();
    eprintln!(
        "[scd-sweep] {points} grid points ({} apps x {} protocols x {} schemes x {} sparse \
         x {} seeds), {jobs} jobs x {} shards",
        spec.apps.len(),
        spec.protocols.len(),
        spec.schemes.len(),
        spec.sparse.len(),
        spec.seeds.len(),
        spec.shards,
    );

    let mut sink: Option<JsonlFileSink> = stream_out.as_ref().map(|path| {
        JsonlFileSink::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("scd-sweep: cannot open {path} for streaming: {e}");
            std::process::exit(1);
        })
    });
    if let Some(sink) = sink.as_mut() {
        sink.emit(&sweep_begin_record(&spec, jobs).to_string());
        sink.flush();
    }
    // Live per-run progress goes to stderr only when someone is watching
    // (suppressed under redirection so logs stay clean); the stream file,
    // when requested, gets every record regardless and is flushed per run
    // so a dashboard can tail it.
    let progress_tty = std::io::stderr().is_terminal();
    let outcome = run_sweep_with(&spec, jobs, &mut |p| {
        if progress_tty {
            eprintln!("[scd-sweep] {}", p.render());
        }
        if let Some(sink) = sink.as_mut() {
            sink.emit(&p.to_json().to_string());
            sink.flush();
        }
    });
    if let Some(sink) = sink.as_mut() {
        sink.emit(&sweep_end_record(&outcome).to_string());
        sink.flush();
    }
    if let Some(path) = &stream_out {
        eprintln!("[scd-sweep] progress stream written to {path}");
    }

    for run in &outcome.runs {
        eprintln!(
            "[scd-sweep] {:<40} cycles={:>10} {:>6.2}s",
            run.desc.id, run.stats.cycles, run.wall_seconds
        );
    }
    eprintln!(
        "[scd-sweep] {} runs in {:.2}s wall on {} jobs ({:.2}s serial-equivalent, {:.2}x)",
        outcome.runs.len(),
        outcome.wall_seconds,
        outcome.jobs,
        outcome.serial_seconds(),
        outcome.serial_seconds() / outcome.wall_seconds.max(f64::MIN_POSITIVE)
    );

    if let Some(dir) = bench_out {
        let dir = std::path::Path::new(&dir);
        for run in &outcome.runs {
            let app = &outcome.apps[run.desc.app_idx];
            write_bench_json_in(
                dir,
                app,
                &run.desc.scheme_label,
                &run.stats,
                run.attribution.clone(),
            );
        }
    }

    let doc = sweep_document(&outcome, &spec, timing);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, format!("{doc}\n")) {
                eprintln!("scd-sweep: cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("[scd-sweep] document written to {path}");
        }
        None => println!("{doc}"),
    }
}
