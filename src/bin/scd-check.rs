//! Exhaustive small-config model checker for the coherence core.
//!
//! Runs the `scd-check` litmus corpus — tiny adversarial workloads over
//! 2–3 clusters — through exhaustive interleaving exploration across
//! every directory scheme × organization combination, asserting the
//! coherence invariants at every reached state. Violations are reported
//! as minimal choice sequences and optionally replayed into standard
//! `scd-trace` JSONL counterexamples (consumable by `scd-validate` and
//! the Perfetto exporter).
//!
//! ```text
//! scd-check --litmus all                         # full corpus, every scheme/org
//! scd-check --litmus message-passing --scheme dense --org complete
//! scd-check --litmus all --mutate skip-inval \
//!           --counterexample-out cex.jsonl       # prove the checker catches bugs
//! scd-check --litmus all --walk 64 --seed 7      # random-walk smoke mode
//! ```
//!
//! Exit codes: 0 = no violations, 1 = violation found, 2 = usage error.

use scd::check::{
    explore, minimize, random_walk, replay_trace, scenarios, Counterexample, ExploreConfig,
};
use scd::machine::machine::explore::{FaultEdges, Mutation};
use std::process::exit;

const HELP: &str = "\
scd-check: exhaustive small-config model checker for the coherence core

usage: scd-check [options]

  --list                   list litmus tests and scenarios, then exit
  --litmus all|NAME[,..]   litmus tests to run (default: all)
  --protocol all|P[,..]    only scenarios for these coherence protocols
                           (dash, tardis, dls; default: all)
  --scheme all|PREFIX      only scenarios whose label starts with PREFIX
                           (dense, dir1b, dir1nb, dir1x, dir1cv2)
  --org all|NAME           only scenarios with this organization
                           (complete, sparse, overflow)
  --max-depth N            per-path step bound (default 4096)
  --max-states N           distinct-state bound per run (default 200000)
  --fault-nack             also explore NACK fault edges
  --fault-delay CYCLES     also explore delay fault edges
  --fault-dup CYCLES       also explore duplicate-request fault edges
  --fault-budget N         max injected faults per path (default: per-litmus)
  --mutate NAME            arm a deliberate protocol bug (expect exit 1):
                           skip-inval (dash), tardis-skip-wts-bump,
                           dls-skip-writeback
  --minimize               shrink any counterexample to minimal depth
  --counterexample-out F   write the violating run as scd-trace JSONL
  --walk STEPS             random-walk mode instead of exhaustive search
  --seed S                 random-walk seed (default 1)
  -h, --help               show this help
";

struct Options {
    litmus: String,
    protocol: String,
    scheme: String,
    org: String,
    max_depth: usize,
    max_states: u64,
    fault_nack: bool,
    fault_delay: Option<u64>,
    fault_dup: Option<u64>,
    fault_budget: Option<u32>,
    mutate: Option<Mutation>,
    minimize: bool,
    cex_out: Option<String>,
    walk: Option<usize>,
    seed: u64,
    list: bool,
}

fn usage(msg: &str) -> ! {
    eprintln!("scd-check: {msg}\n\n{HELP}");
    exit(2);
}

fn parse_args() -> Options {
    let mut o = Options {
        litmus: "all".into(),
        protocol: "all".into(),
        scheme: "all".into(),
        org: "all".into(),
        max_depth: 4096,
        max_states: 200_000,
        fault_nack: false,
        fault_delay: None,
        fault_dup: None,
        fault_budget: None,
        mutate: None,
        minimize: false,
        cex_out: None,
        walk: None,
        seed: 1,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                exit(0);
            }
            "--list" => o.list = true,
            "--litmus" => o.litmus = value(&mut args, "--litmus"),
            "--protocol" => o.protocol = value(&mut args, "--protocol"),
            "--scheme" => o.scheme = value(&mut args, "--scheme"),
            "--org" => o.org = value(&mut args, "--org"),
            "--max-depth" => {
                o.max_depth = value(&mut args, "--max-depth")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-depth must be an integer"))
            }
            "--max-states" => {
                o.max_states = value(&mut args, "--max-states")
                    .parse()
                    .unwrap_or_else(|_| usage("--max-states must be an integer"))
            }
            "--fault-nack" => o.fault_nack = true,
            "--fault-delay" => {
                o.fault_delay = Some(
                    value(&mut args, "--fault-delay")
                        .parse()
                        .unwrap_or_else(|_| usage("--fault-delay must be an integer")),
                )
            }
            "--fault-dup" => {
                o.fault_dup = Some(
                    value(&mut args, "--fault-dup")
                        .parse()
                        .unwrap_or_else(|_| usage("--fault-dup must be an integer")),
                )
            }
            "--fault-budget" => {
                o.fault_budget = Some(
                    value(&mut args, "--fault-budget")
                        .parse()
                        .unwrap_or_else(|_| usage("--fault-budget must be an integer")),
                )
            }
            "--mutate" => match value(&mut args, "--mutate").as_str() {
                "skip-inval" => o.mutate = Some(Mutation::SkipInval),
                "tardis-skip-wts-bump" => o.mutate = Some(Mutation::TardisSkipWtsBump),
                "dls-skip-writeback" => o.mutate = Some(Mutation::DlsSkipWriteback),
                other => usage(&format!(
                    "unknown mutation `{other}` (known: skip-inval, \
                     tardis-skip-wts-bump, dls-skip-writeback)"
                )),
            },
            "--minimize" => o.minimize = true,
            "--counterexample-out" => o.cex_out = Some(value(&mut args, "--counterexample-out")),
            "--walk" => {
                o.walk = Some(
                    value(&mut args, "--walk")
                        .parse()
                        .unwrap_or_else(|_| usage("--walk must be an integer")),
                )
            }
            "--seed" => {
                o.seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| usage("--seed must be an integer"))
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    o
}

fn emit_counterexample(
    litmus: &scd::check::Litmus,
    scenario: &scd::check::Scenario,
    mutate: Option<Mutation>,
    cfg: &ExploreConfig,
    cex: &Counterexample,
    path: &str,
) {
    let build = || litmus.build(scenario, mutate, true);
    let (jsonl, steps) = replay_trace(&build, cfg, &cex.choices);
    eprintln!("  reproduction ({} choices):", cex.choices.len());
    for (i, s) in steps.iter().enumerate() {
        eprintln!("    {i:>3}  {s}");
    }
    match std::fs::write(path, &jsonl) {
        Ok(()) => eprintln!("  counterexample trace written to {path}"),
        Err(e) => eprintln!("  cannot write {path}: {e}"),
    }
}

fn main() {
    let o = parse_args();
    let litmus = match scd::check::litmus::select(&o.litmus) {
        Ok(l) => l,
        Err(e) => usage(&e),
    };
    let protocols: Vec<scd::machine::ProtocolKind> = if o.protocol == "all" {
        scd::machine::ProtocolKind::ALL.to_vec()
    } else {
        o.protocol
            .split(',')
            .map(|p| {
                scd::machine::ProtocolKind::parse(p.trim())
                    .unwrap_or_else(|e| usage(&e))
            })
            .collect()
    };
    let scens: Vec<_> = scenarios()
        .into_iter()
        .filter(|s| protocols.contains(&s.protocol))
        .filter(|s| o.scheme == "all" || s.label.starts_with(&o.scheme))
        .filter(|s| o.org == "all" || s.label.ends_with(&o.org))
        .collect();
    if scens.is_empty() {
        usage("no scenario matches the --protocol/--scheme/--org filters");
    }
    if o.list {
        println!("litmus tests:");
        for l in &litmus {
            println!("  {:<32} {}", l.name, l.summary);
        }
        println!("scenarios:");
        for s in &scens {
            println!("  {}", s.label);
        }
        return;
    }

    let mut failures = 0u32;
    for l in &litmus {
        for s in &scens {
            let cfg = ExploreConfig {
                faults: FaultEdges {
                    nack: l.faults.nack || o.fault_nack,
                    delay: o.fault_delay.or(l.faults.delay),
                    dup: o.fault_dup.or(l.faults.dup),
                },
                fault_budget: o.fault_budget.unwrap_or(l.fault_budget),
                max_depth: o.max_depth,
                max_states: o.max_states,
                check_each_step: true,
            };
            let build = || l.build(s, o.mutate, false);

            if let Some(steps) = o.walk {
                let w = random_walk(&build, &cfg, o.seed, steps);
                match &w.violation {
                    None => println!(
                        "walk  {:<28} {:<18} {:>6} steps  ok",
                        l.name, s.label, w.steps
                    ),
                    Some(v) => {
                        failures += 1;
                        println!(
                            "walk  {:<28} {:<18} {:>6} steps  VIOLATION: {}",
                            l.name, s.label, w.steps, v.error
                        );
                    }
                }
                continue;
            }

            let outcome = explore(&build, &cfg);
            match &outcome.violation {
                None => {
                    println!(
                        "check {:<28} {:<18} {:>7} states {:>6} leaves  {}",
                        l.name,
                        s.label,
                        outcome.visited,
                        outcome.leaves,
                        if outcome.truncated { "TRUNCATED" } else { "ok" }
                    );
                }
                Some(found) => {
                    failures += 1;
                    let cex = if o.minimize {
                        minimize(&build, &cfg, found.choices.len())
                            .unwrap_or_else(|| found.clone())
                    } else {
                        found.clone()
                    };
                    println!(
                        "check {:<28} {:<18} {:>7} states  VIOLATION at depth {}",
                        l.name,
                        s.label,
                        outcome.visited,
                        cex.choices.len()
                    );
                    eprintln!("  {}", cex.error);
                    if let Some(path) = &o.cex_out {
                        emit_counterexample(l, s, o.mutate, &cfg, &cex, path);
                    }
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("scd-check: {failures} violation(s) found");
        exit(1);
    }
}
