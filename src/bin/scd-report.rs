//! Cross-run regression reporter over `scd-run-stats/v1` documents.
//!
//! Loads a baseline stats document (`scdsim --stats-json`, `BENCH_*.json`)
//! and one or more candidates, prints a comparison table of the tracked
//! metrics (execution cycles, traffic per shared reference, invalidations
//! per write, mean hops, and — when both documents carry a metrics
//! section — read/write latency percentiles), and exits non-zero when any
//! metric regresses beyond the tolerance. All tracked metrics are
//! lower-is-better, so this is the CI perf gate: commit `BENCH_*.json`
//! baselines, regenerate a point, and let the exit code decide.
//!
//! ```text
//! scd-report [--baseline <file>] [--tolerance <pct>[%]] <file>...
//! ```
//!
//! Without `--baseline`, the first file is the baseline and the rest are
//! candidates; a single file self-compares (always a pass — useful as a
//! schema smoke test). Exit codes: 0 all candidates within tolerance,
//! 1 at least one regression, 2 usage or parse error.
//!
//! With `--throughput-tolerance`, the reporter instead gates *host
//! throughput*: the files must be timed `scd-sweep/v1` documents, and the
//! gate fails when an aggregate `refs_per_sec`/`events_per_sec` rate
//! falls more than the tolerance below the baseline (higher-is-better —
//! a faster simulator can never fail this gate; noisy per-run rates are
//! listed as `info` rows and never judged).

use scd::trace::{compare_docs, compare_throughput, doc_label, Json};
use std::process::exit;

const HELP: &str = "\
scd-report: compare scd-run-stats/v1 documents and flag regressions

usage: scd-report [--baseline <file>] [--tolerance <pct>[%]] <file>...
       scd-report --throughput-tolerance <pct>[%] [--baseline <file>] <file>...

  --baseline <file>   stats document to compare against (default: the
                      first positional file)
  --tolerance <pct>   allowed worsening per metric, in percent
                      (default 5; `10` and `10%` both accepted)
  --throughput-tolerance <pct>
                      gate host throughput instead of simulated metrics:
                      files must be timed scd-sweep/v1 documents, and the
                      aggregate refs_per_sec/events_per_sec rates may fall
                      at most <pct> percent below the baseline (higher is
                      better; per-run rates are info-only)
  <file>...           candidate documents (scdsim --stats-json output,
                      BENCH_*.json bench points, or scd-sweep documents
                      in throughput mode)
  -h, --help          show this help

Simulated metrics are lower-is-better, throughput rates higher-is-better.
Exit code 0 when every candidate stays within tolerance of the baseline,
1 on any regression, 2 on usage or parse errors.
";

fn usage_err(msg: &str) -> ! {
    eprintln!("scd-report: {msg}\n{HELP}");
    exit(2);
}

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("scd-report: cannot read {path}: {e}");
            exit(2);
        }
    };
    match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("scd-report: {path}: not a JSON document: {e}");
            exit(2);
        }
    }
}

fn parse_pct(flag: &str, raw: Option<String>) -> f64 {
    let Some(raw) = raw else {
        usage_err(&format!("{flag} needs a percentage argument"));
    };
    match raw.trim_end_matches('%').parse::<f64>() {
        Ok(pct) if pct >= 0.0 && pct.is_finite() => pct,
        _ => usage_err(&format!("invalid tolerance `{raw}`")),
    }
}

fn main() {
    let mut baseline: Option<String> = None;
    let mut tolerance = 5.0f64;
    let mut throughput: Option<f64> = None;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            "--baseline" => match args.next() {
                Some(path) => baseline = Some(path),
                None => usage_err("--baseline needs a file argument"),
            },
            "--tolerance" => tolerance = parse_pct("--tolerance", args.next()),
            "--throughput-tolerance" => {
                throughput = Some(parse_pct("--throughput-tolerance", args.next()));
            }
            path if !path.starts_with('-') => files.push(path.to_string()),
            other => usage_err(&format!("unknown flag {other}")),
        }
    }

    let (base_path, candidates) = match (baseline, files.as_slice()) {
        (Some(base), []) => (base.clone(), vec![base]), // self-comparison
        (Some(base), rest) => (base, rest.to_vec()),
        (None, [only]) => (only.clone(), vec![only.clone()]), // self-comparison
        (None, [first, rest @ ..]) => (first.clone(), rest.to_vec()),
        (None, []) => usage_err("no files given"),
    };

    let base = load(&base_path);
    let mut regressions = 0usize;
    for (i, path) in candidates.iter().enumerate() {
        let cand = load(path);
        if i > 0 {
            println!();
        }
        if let Some(tol) = throughput {
            let cmp = match compare_throughput(&base, &cand, tol) {
                Ok(cmp) => cmp,
                Err(e) => {
                    eprintln!("scd-report: {base_path} vs {path}: {e}");
                    exit(2);
                }
            };
            println!("== {base_path} vs {path} (host throughput)");
            print!("{}", cmp.render());
            regressions += cmp.regressions().count();
        } else {
            let cmp = match compare_docs(&base, &cand, tolerance) {
                Ok(cmp) => cmp,
                Err(e) => {
                    eprintln!("scd-report: {base_path} vs {path}: {e}");
                    exit(2);
                }
            };
            println!(
                "== {} ({}) vs {} ({})",
                base_path,
                doc_label(&base),
                path,
                doc_label(&cand)
            );
            print!("{}", cmp.render());
            regressions += cmp.regressions().count();
        }
    }
    if regressions > 0 {
        exit(1);
    }
}
