//! Offline validator for the machine-readable telemetry formats.
//!
//! Checks trace logs (`scdsim --trace-out`, JSONL) against the
//! per-transaction lifecycle invariants, stats dumps
//! (`scdsim --stats-json`, `BENCH_*.json`) against the
//! `scd-run-stats/v1` schema, and Perfetto exports
//! (`scdsim --perfetto-out`) against the chrome `trace_event` format
//! (slice stack discipline, matched async message pairs). CI runs this
//! over the smoke job's outputs; it is also the quickest way to
//! sanity-check a trace by hand.
//!
//! ```text
//! scd-validate [--trace <file>]... [--stats <file>]...
//!              [--perfetto <file>]... [--stream <file>]...
//!              [--extract-trace <file>] [<file>]...
//! ```
//!
//! Bare file arguments are auto-detected by extension: `.jsonl` is treated
//! as a trace, anything else as a stats document. Exits non-zero if any
//! file fails validation. `--extract-trace` is a filter, not a check: it
//! prints the trace-event lines of a live telemetry stream
//! (`scdsim --stream-out`) verbatim to stdout, so CI can `cmp` the
//! streamed trace against the post-hoc `--trace-out` file.

use scd::trace::{
    extract_trace_lines, validate_patterns_json, validate_perfetto, validate_stats_json,
    validate_stream, validate_trace,
};
use std::process::exit;

const HELP: &str = "\
scd-validate: check scd telemetry files against their schemas

usage: scd-validate [--trace <file>]... [--stats <file>]...
                    [--patterns <file>]... [--perfetto <file>]...
                    [--stream <file>]... [--extract-trace <file>]
                    [<file>]...

  --trace <file>         validate a JSONL transaction trace
                         (scdsim --trace-out)
  --stats <file>         validate an scd-run-stats/v1 document
                         (scdsim --stats-json, BENCH_*.json)
  --patterns <file>      validate an scd-patterns/v1 document
                         (scdsim --patterns-out, scd-patterns --out):
                         class counts sum to tracked blocks, the
                         invalidation distribution sums to its counters,
                         occupancy invariants hold
  --perfetto <file>      validate a chrome trace_event export
                         (scdsim --perfetto-out)
  --stream <file>        validate a live telemetry stream
                         (scdsim --stream-out, scd-sweep --stream-out):
                         record shapes, event/interval ordering, interval
                         tiling, sweep progress monotonicity, closing
                         run_end/sweep_end
  --extract-trace <file> print the stream's trace-event lines verbatim to
                         stdout (byte-comparable with --trace-out output)
  <file>                 auto-detect: .jsonl -> trace, otherwise stats
  -h, --help             show this help
";

enum Kind {
    Trace,
    Stats,
    Patterns,
    Perfetto,
    Stream,
    ExtractTrace,
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("scd-validate: cannot read {path}: {e}");
            exit(2);
        }
    }
}

fn main() {
    let mut jobs: Vec<(Kind, String)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{HELP}");
                return;
            }
            "--trace" | "--stats" | "--patterns" | "--perfetto" | "--stream"
            | "--extract-trace" => {
                let Some(path) = args.next() else {
                    eprintln!("scd-validate: {arg} needs a file argument");
                    exit(2);
                };
                let kind = match arg.as_str() {
                    "--trace" => Kind::Trace,
                    "--patterns" => Kind::Patterns,
                    "--perfetto" => Kind::Perfetto,
                    "--stream" => Kind::Stream,
                    "--extract-trace" => Kind::ExtractTrace,
                    _ => Kind::Stats,
                };
                jobs.push((kind, path));
            }
            path if !path.starts_with('-') => {
                let kind = if path.ends_with(".jsonl") {
                    Kind::Trace
                } else {
                    Kind::Stats
                };
                jobs.push((kind, path.to_string()));
            }
            other => {
                eprintln!("scd-validate: unknown flag {other}\n{HELP}");
                exit(2);
            }
        }
    }
    if jobs.is_empty() {
        eprintln!("scd-validate: no files given\n{HELP}");
        exit(2);
    }

    let mut failures = 0usize;
    for (kind, path) in &jobs {
        let text = read(path);
        match kind {
            Kind::Trace => match validate_trace(&text) {
                Ok(s) => {
                    println!(
                        "{path}: OK — {} events, {} transactions ({} completed)",
                        s.events, s.transactions, s.completed
                    );
                    for (ty, n) in &s.by_type {
                        println!("    {ty:<14} {n}");
                    }
                }
                Err(e) => {
                    eprintln!("{path}: FAIL — {e}");
                    failures += 1;
                }
            },
            Kind::Stats => match validate_stats_json(&text) {
                Ok(()) => println!("{path}: OK — scd-run-stats/v1"),
                Err(e) => {
                    eprintln!("{path}: FAIL — {e}");
                    failures += 1;
                }
            },
            Kind::Patterns => match validate_patterns_json(&text) {
                Ok(()) => println!("{path}: OK — scd-patterns/v1"),
                Err(e) => {
                    eprintln!("{path}: FAIL — {e}");
                    failures += 1;
                }
            },
            Kind::Perfetto => match validate_perfetto(&text) {
                Ok(s) => println!(
                    "{path}: OK — {} events ({} slices, {} msg ops, {} counters, {} meta)",
                    s.events, s.slices, s.async_ops, s.counters, s.meta
                ),
                Err(e) => {
                    eprintln!("{path}: FAIL — {e}");
                    failures += 1;
                }
            },
            Kind::Stream => match validate_stream(&text) {
                Ok(s) => {
                    println!(
                        "{path}: OK — {} lines ({} events, {} intervals, {} attrib deltas, \
                         {} sweep runs{}{})",
                        s.lines,
                        s.events,
                        s.intervals,
                        s.attrib_deltas,
                        s.sweep_runs,
                        if s.run_ended { ", run_end" } else { "" },
                        if s.sweep_ended { ", sweep_end" } else { "" },
                    );
                }
                Err(e) => {
                    eprintln!("{path}: FAIL — {e}");
                    failures += 1;
                }
            },
            Kind::ExtractTrace => print!("{}", extract_trace_lines(&text)),
        }
    }
    if failures > 0 {
        eprintln!("scd-validate: {failures} of {} files failed", jobs.len());
        exit(1);
    }
}
