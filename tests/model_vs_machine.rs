//! Cross-validation regression: the Figure-2 Monte-Carlo model and the
//! full machine must agree on invalidations-per-write for controlled
//! sharer counts (see `bench --bin fig2_machine` for the full sweep).

use scd::apps::{synth, SharingPattern, SynthParams};
use scd::core::analysis::average_invalidations;
use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};

fn machine_mean(scheme: Scheme, sharers: usize) -> f64 {
    let app = synth(
        &SynthParams {
            pattern: SharingPattern::WideRead { sharers },
            blocks: 96,
            rounds: 1,
        },
        16,
        0xF162 + sharers as u64,
    );
    let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
    cfg.clusters = 16;
    cfg.check_invariants = true;
    cfg.track_versions = true;
    let stats = Machine::new(cfg, app.boxed_programs()).run();
    assert_eq!(stats.invalidations.events(), 96, "one event per write");
    stats.invalidations.mean()
}

#[test]
fn full_vector_matches_model_exactly() {
    for s in [1usize, 3, 7, 12] {
        let model = average_invalidations(Scheme::FullVector, 16, s, 2_000, 1);
        let machine = machine_mean(Scheme::FullVector, s);
        assert!(
            (model - machine).abs() < 1e-9,
            "s={s}: model {model} machine {machine}"
        );
    }
}

#[test]
fn broadcast_matches_model_exactly() {
    for s in [2usize, 4, 8] {
        let model = average_invalidations(Scheme::dir_b(3), 16, s, 2_000, 1);
        let machine = machine_mean(Scheme::dir_b(3), s);
        assert!(
            (model - machine).abs() < 1e-9,
            "s={s}: model {model} machine {machine}"
        );
    }
}

#[test]
fn coarse_vector_matches_model_within_sampling_noise() {
    for s in [4usize, 8, 12] {
        let model = average_invalidations(Scheme::dir_cv(3, 2), 16, s, 50_000, 1);
        let machine = machine_mean(Scheme::dir_cv(3, 2), s);
        assert!(
            (model - machine).abs() < 0.5,
            "s={s}: model {model} machine {machine}"
        );
    }
}

#[test]
fn migratory_pattern_causes_pure_ownership_transfers() {
    // MP3D's pattern in isolation: reads forward + writes transfer, but no
    // invalidation fan-out.
    let app = synth(
        &SynthParams {
            pattern: SharingPattern::Migratory,
            blocks: 64,
            rounds: 4,
        },
        16,
        5,
    );
    let mut cfg = MachineConfig::paper_32();
    cfg.clusters = 16;
    cfg.check_invariants = true;
    let stats = Machine::new(cfg, app.boxed_programs()).run();
    // Migratory sharing's signature: every write invalidates at most the
    // single previous holder (the distribution has no tail), and reads of
    // dirty data travel by ownership forwarding.
    assert!(
        stats.invalidations.max_value() <= 1,
        "migratory events touch at most one previous holder"
    );
    assert!(
        stats.invalidations.mean() <= 1.0,
        "got {}",
        stats.invalidations.mean()
    );
    assert!(stats.protocol.forwards > 0, "migration forwards ownership");
}
