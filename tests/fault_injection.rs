//! Fault-injection suite: the protocol must absorb injected NACKs,
//! duplicated read requests, latency spikes, and out-of-order request
//! jitter — still quiescing with the coherence invariants intact — and the
//! machine must report unrecoverable runs (deadlock, livelock, cycle
//! budget) as structured [`SimError`]s with a useful post-mortem instead of
//! panicking.

use scd::core::{Replacement, Scheme};
use scd::machine::{Machine, MachineConfig, RunStats, SimError};
use scd::noc::FaultPlan;
use scd::sim::SimRng;
use scd::tango::{Op, ScriptProgram, ThreadProgram};

/// A random mix of reads/writes over a small hot block set (same shape as
/// the coherence stress suite, shortened so the whole fault matrix stays
/// quick in debug builds).
fn random_programs(
    procs: usize,
    ops_per_proc: usize,
    blocks: u64,
    write_ratio: f64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let mut root = SimRng::new(seed);
    (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::with_capacity(ops_per_proc);
            for _ in 0..ops_per_proc {
                let addr = rng.below(blocks) * 16;
                if rng.chance(write_ratio) {
                    ops.push(Op::Write(addr));
                } else {
                    ops.push(Op::Read(addr));
                }
                if rng.chance(0.3) {
                    ops.push(Op::Compute(rng.below(20)));
                }
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect()
}

fn run_faulty(cfg: MachineConfig, blocks: u64, seed: u64) -> RunStats {
    let programs = random_programs(cfg.processors(), 250, blocks, 0.4, seed);
    match Machine::new(cfg, programs).try_run() {
        Ok(stats) => stats,
        Err(e) => panic!("faulty run failed to quiesce: {e}"),
    }
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::FullVector,
        Scheme::dir_b(3),
        Scheme::dir_nb(3),
        Scheme::dir_x(3),
        Scheme::dir_cv(3, 2),
        Scheme::dir_cv(1, 4),
        Scheme::dir_b(1),
        Scheme::dir_nb(1),
    ]
}

/// One plan per fault mode, rates high enough that every mode fires many
/// times over a 250-op-per-proc run.
fn fault_modes() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("nack", FaultPlan::nack(0.05)),
        ("dup", FaultPlan::dup(0.03)),
        ("delay", FaultPlan::delay(0.05, 200)),
        ("reorder", FaultPlan::reorder(0.05, 100)),
    ]
}

#[test]
fn every_scheme_quiesces_under_every_fault_mode() {
    for scheme in all_schemes() {
        for (mode, plan) in fault_modes() {
            // tiny() runs the quiescent invariant checker and the version
            // oracle, so a fault that corrupted coherence would surface as
            // an InvariantViolation here.
            let cfg = MachineConfig::tiny(6).with_scheme(scheme).with_fault(plan);
            let stats = run_faulty(cfg, 24, 0xFA017);
            assert!(stats.cycles > 0, "{scheme:?} under {mode}");
        }
    }
}

#[test]
fn sparse_and_overflow_directories_quiesce_under_every_fault_mode() {
    for scheme in [Scheme::FullVector, Scheme::dir_cv(2, 2), Scheme::dir_b(2)] {
        for (mode, plan) in fault_modes() {
            let sparse = MachineConfig::tiny(6)
                .with_scheme(scheme)
                .with_sparse(8, 2, Replacement::Lru)
                .with_fault(plan);
            // 32 blocks per home >> 8 directory entries per home, so
            // replacement flushes interleave with the injected faults.
            run_faulty(sparse, 192, 0xFA025);

            let overflow = MachineConfig::tiny(6)
                .with_overflow(2, 4, 2, Replacement::Lru)
                .with_fault(plan);
            let stats = run_faulty(overflow, 96, 0xFA033);
            assert!(stats.cycles > 0, "overflow under {mode}");
        }
    }
}

#[test]
fn nack_mode_counts_nacks_and_retries() {
    let cfg = MachineConfig::tiny(6).with_fault(FaultPlan::nack(0.05));
    let stats = run_faulty(cfg, 24, 0xFA041);
    assert!(stats.faults.nacks > 0, "no NACKs injected: {:?}", stats.faults);
    assert!(stats.faults.retries > 0, "no retries issued: {:?}", stats.faults);
    // Every retry answers a NACK; a NACK may also be dropped as stale.
    assert!(
        stats.faults.retries <= stats.faults.nacks,
        "more retries than NACKs: {:?}",
        stats.faults
    );
}

#[test]
fn dup_mode_counts_duplicates_and_dropped_strays() {
    let cfg = MachineConfig::tiny(6).with_fault(FaultPlan::dup(0.05));
    let stats = run_faulty(cfg, 24, 0xFA049);
    assert!(stats.faults.duplicates > 0, "no duplicates: {:?}", stats.faults);
    assert!(
        stats.faults.strays_dropped > 0,
        "duplicated services produced no strays: {:?}",
        stats.faults
    );
}

#[test]
fn delay_and_reorder_modes_count_their_injections() {
    let cfg = MachineConfig::tiny(6).with_fault(FaultPlan::delay(0.05, 200));
    let stats = run_faulty(cfg, 24, 0xFA057);
    assert!(stats.faults.delay_spikes > 0, "{:?}", stats.faults);

    let cfg = MachineConfig::tiny(6).with_fault(FaultPlan::reorder(0.05, 100));
    let stats = run_faulty(cfg, 24, 0xFA057);
    assert!(stats.faults.reorders > 0, "{:?}", stats.faults);
}

#[test]
fn combined_fault_modes_still_quiesce() {
    let plan = FaultPlan::parse("nack:0.03,dup:0.02,delay:0.03:150,reorder:0.03:80")
        .expect("valid spec");
    for scheme in [Scheme::FullVector, Scheme::dir_nb(3), Scheme::dir_cv(3, 2)] {
        let cfg = MachineConfig::tiny(6).with_scheme(scheme).with_fault(plan);
        let stats = run_faulty(cfg, 24, 0xFA065);
        assert!(stats.faults.nacks > 0 && stats.faults.duplicates > 0, "{:?}", stats.faults);
    }
}

/// Fault placement is drawn from per-channel RNG streams keyed by
/// (seed, src, dst), so partitioning the machine across worker threads
/// must not move a single injection: a combined-mode faulty run under
/// `--shards 2` is bit-identical to the serial run, scheme by scheme.
#[test]
fn combined_fault_modes_are_shard_invariant() {
    use scd::machine::ShardedMachine;
    let plan = FaultPlan::parse("nack:0.03,dup:0.02,delay:0.03:150,reorder:0.03:80")
        .expect("valid spec");
    for scheme in [Scheme::FullVector, Scheme::dir_nb(3), Scheme::dir_cv(3, 2)] {
        let run = |shards: usize| {
            let cfg = MachineConfig::tiny(6).with_scheme(scheme).with_fault(plan);
            let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0xFA065);
            ShardedMachine::new(cfg, programs, shards)
                .expect("tiny machines shard")
                .try_run()
                .unwrap_or_else(|e| panic!("faulty run failed to quiesce: {e}"))
        };
        let serial = run(1);
        let sharded = run(2);
        assert!(serial.faults.nacks > 0, "faults must actually fire");
        assert_eq!(
            serial.to_json().to_string(),
            sharded.to_json().to_string(),
            "scheme {scheme:?} diverged under 2 shards"
        );
    }
}

#[test]
fn inert_plan_is_bit_identical_to_no_plan() {
    let run = |plan: Option<FaultPlan>| {
        let mut cfg = MachineConfig::tiny(6);
        cfg.fault_plan = plan;
        let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0xFA073);
        Machine::new(cfg, programs).run()
    };
    let base = run(None);
    let inert = run(Some(FaultPlan::none()));
    assert_eq!(base.cycles, inert.cycles);
    assert_eq!(base.traffic, inert.traffic);
    assert_eq!(base.l2_misses, inert.l2_misses);
    assert_eq!(base.protocol, inert.protocol);
    assert_eq!(base.faults, inert.faults);
    assert_eq!(inert.faults, Default::default());
}

#[test]
fn permanent_nacks_trip_the_livelock_watchdog() {
    // nack_prob = 1.0 refuses every coherence request forever: the retry
    // loop never converges, so the watchdog must end the run and name the
    // starving processor.
    let cfg = MachineConfig::tiny(2)
        .with_fault(FaultPlan::nack(1.0))
        .with_watchdog(50_000);
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(ScriptProgram::new(vec![])),
        // Block 0's home is cluster 0, so cluster 1's read is remote.
        Box::new(ScriptProgram::new(vec![Op::Read(0)])),
    ];
    let err = Machine::new(cfg, programs).try_run().expect_err("must livelock");
    let SimError::LivelockWatchdog(pm) = &err else {
        panic!("expected LivelockWatchdog, got {err}");
    };
    assert!(pm.blocked_procs.iter().any(|b| b.proc == 1), "{err}");
    assert!(pm.faults.nacks > 0 && pm.faults.retries > 0, "{err}");
    let text = err.to_string();
    assert!(text.contains("livelock") && text.contains("proc 1"), "{text}");
}

#[test]
fn lost_lock_grant_reports_deadlock_with_post_mortem() {
    // Processor 0 takes the lock and finishes without releasing it;
    // processor 1 waits forever. Once the queue drains, that is a deadlock
    // and the post-mortem must name the blocked processor.
    let cfg = MachineConfig::tiny(2);
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(ScriptProgram::new(vec![Op::Lock(0)])),
        Box::new(ScriptProgram::new(vec![Op::Compute(500), Op::Lock(0)])),
    ];
    let err = Machine::new(cfg, programs).try_run().expect_err("must deadlock");
    let SimError::Deadlock(pm) = &err else {
        panic!("expected Deadlock, got {err}");
    };
    assert_eq!(pm.running, 1, "{err}");
    assert!(pm.blocked_procs.iter().any(|b| b.proc == 1), "{err}");
    assert!(err.to_string().contains("deadlock"), "{err}");
}

#[test]
fn exceeding_the_cycle_budget_reports_max_cycles() {
    let mut cfg = MachineConfig::tiny(2);
    cfg.max_cycles = 100;
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(ScriptProgram::new(vec![Op::Compute(80), Op::Compute(80)])),
        Box::new(ScriptProgram::new(vec![])),
    ];
    let err = Machine::new(cfg, programs)
        .try_run()
        .expect_err("must exceed the budget");
    assert!(matches!(err, SimError::MaxCycles(_)), "{err}");
    assert!(err.to_string().contains("max_cycles"), "{err}");
}

#[test]
fn run_panics_with_the_formatted_post_mortem() {
    let result = std::panic::catch_unwind(|| {
        let cfg = MachineConfig::tiny(2);
        let programs: Vec<Box<dyn ThreadProgram>> = vec![
            Box::new(ScriptProgram::new(vec![Op::Lock(0)])),
            Box::new(ScriptProgram::new(vec![Op::Compute(500), Op::Lock(0)])),
        ];
        Machine::new(cfg, programs).run()
    });
    let payload = result.expect_err("run() must panic on deadlock");
    let text = payload
        .downcast_ref::<String>()
        .expect("panic payload is the formatted error");
    assert!(text.contains("deadlock") && text.contains("proc 1"), "{text}");
}

/// Arena-churn soundness: duplicated, delayed, and reordered deliveries
/// drive the message arena's alloc/take traffic through its free-list
/// reuse paths in adversarial orders (a duplicate gets its own slot, a
/// reordered request is taken long after later allocations recycled its
/// neighbours). `try_run` itself asserts the arena's accounting — every
/// parked payload taken exactly once, none left after the queue drains —
/// as an invariant that fails the run, so quiescing across every scheme
/// IS the soundness check; the stats assertions just prove the churn was
/// real and the event accounting stayed consistent.
#[test]
fn message_arena_stays_sound_under_fault_churn() {
    let plan = FaultPlan::parse("dup:0.04,delay:0.04:180,reorder:0.04:90").expect("valid spec");
    for scheme in all_schemes() {
        let cfg = MachineConfig::tiny(6).with_scheme(scheme).with_fault(plan);
        let stats = run_faulty(cfg, 48, 0xFA073);
        assert!(
            stats.faults.duplicates > 0
                && stats.faults.delay_spikes > 0
                && stats.faults.reorders > 0,
            "churn did not exercise every mode under {scheme:?}: {:?}",
            stats.faults
        );
        // Each simulated message is one Deliver event; processor steps and
        // replays ride the same queue, so the pop count dominates the
        // network message count (duplicates deliver without being sent).
        assert!(
            stats.events_delivered > stats.network.messages,
            "event count {} inconsistent with {} network messages",
            stats.events_delivered,
            stats.network.messages
        );
    }
}
