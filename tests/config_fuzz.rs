//! Configuration fuzzing: random machines (size, cluster shape, caches,
//! scheme, directory organization, network model, contention, hints,
//! serial invalidations) running random workloads, with the version oracle
//! and the quiescent coherence checker always on.
//!
//! Any parameter combination that deadlocks, drops a request, resurrects a
//! stale copy, or leaves the directory inconsistent fails loudly here.

use proptest::prelude::*;
use scd::core::{Replacement, Scheme};
use scd::machine::{Machine, MachineConfig};
use scd::noc::LatencyModel;
use scd::sim::SimRng;
use scd::tango::{Op, ScriptProgram, ThreadProgram};

#[derive(Debug, Clone)]
struct FuzzConfig {
    clusters: usize,
    ppc: usize,
    l2_blocks: usize,
    l2_ways: usize,
    scheme: Scheme,
    org: u8,
    mesh: bool,
    contention: Option<u64>,
    hints: bool,
    serial: bool,
    blocks: u64,
    write_ratio: f64,
    locks: bool,
    seed: u64,
}

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::FullVector),
        (1usize..=4).prop_map(Scheme::dir_b),
        (1usize..=4).prop_map(Scheme::dir_nb),
        (2usize..=4).prop_map(Scheme::dir_x),
        ((1usize..=4), (1usize..=4)).prop_map(|(i, r)| Scheme::dir_cv(i, r)),
    ]
}

fn config_strategy() -> impl Strategy<Value = FuzzConfig> {
    let machine = (
        (2usize..=8),           // clusters
        (1usize..=3),           // procs per cluster
        (1usize..=4),           // l2 sets (blocks = sets * ways)
        (1usize..=2),           // l2 ways
        scheme_strategy(),
        (0u8..3),               // organization: complete / sparse / overflow
        any::<bool>(),          // mesh vs uniform latency
    );
    let features = (
        prop::option::of(1u64..16), // contention occupancy
        any::<bool>(),          // replacement hints
        any::<bool>(),          // serial invalidations
        (4u64..48),             // hot block count
        (0.05f64..0.6),         // write ratio
        any::<bool>(),          // sprinkle locks
        any::<u64>(),           // workload seed
    );
    (machine, features).prop_map(
        |(
            (clusters, ppc, sets, ways, scheme, org, mesh),
            (contention, hints, serial, blocks, write_ratio, locks, seed),
        )| {
            FuzzConfig {
                clusters,
                ppc,
                l2_blocks: sets * ways * 4,
                l2_ways: ways,
                scheme,
                org,
                mesh,
                contention,
                hints,
                serial,
                blocks,
                write_ratio,
                locks,
                seed,
            }
        },
    )
}

fn build_and_run(fz: &FuzzConfig) -> scd::machine::RunStats {
    let mut cfg = MachineConfig::tiny(fz.clusters);
    cfg.procs_per_cluster = fz.ppc;
    cfg.l2_blocks = fz.l2_blocks;
    cfg.l2_ways = fz.l2_ways;
    cfg.l1_blocks = (fz.l2_blocks / 4).max(1);
    cfg.l1_ways = 1;
    cfg.scheme = fz.scheme;
    cfg = match fz.org {
        1 => cfg.with_sparse(4, 2, Replacement::Lru),
        2 => {
            let i = fz.scheme.pointer_count().unwrap_or(2).min(4);
            cfg.with_overflow(i, 4, 2, Replacement::Random)
        }
        _ => cfg,
    };
    if fz.mesh {
        cfg.latency = LatencyModel::Mesh {
            fixed: 13,
            per_hop: 1,
        };
    }
    cfg.link_occupancy = fz.contention;
    cfg.replacement_hints = fz.hints;
    cfg.serial_invalidations = fz.serial;
    // tiny() already enables check_invariants and track_versions.

    let procs = cfg.processors();
    let mut root = SimRng::new(fz.seed);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::new();
            let mut held: Option<u32> = None;
            for _ in 0..150 {
                if fz.locks && held.is_none() && rng.chance(0.05) {
                    let l = rng.below(3) as u32;
                    ops.push(Op::Lock(l));
                    held = Some(l);
                }
                let a = rng.below(fz.blocks) * 16;
                if rng.chance(fz.write_ratio) {
                    ops.push(Op::Write(a));
                } else {
                    ops.push(Op::Read(a));
                }
                if let Some(l) = held {
                    if rng.chance(0.5) {
                        ops.push(Op::Unlock(l));
                        held = None;
                    }
                }
                if rng.chance(0.1) {
                    ops.push(Op::Compute(rng.below(15)));
                }
            }
            if let Some(l) = held {
                ops.push(Op::Unlock(l));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect();
    Machine::new(cfg, programs).run()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_configuration_runs_coherently(fz in config_strategy()) {
        let stats = build_and_run(&fz);
        // The run() call already enforced: no deadlock, version-oracle
        // monotonicity, quiescent single-writer + coverage invariants.
        prop_assert!(stats.cycles > 0);
        prop_assert_eq!(
            stats.shared_refs(),
            stats.shared_reads + stats.shared_writes
        );
    }

    #[test]
    fn identical_configurations_are_bit_deterministic(fz in config_strategy()) {
        let a = build_and_run(&fz);
        let b = build_and_run(&fz);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.traffic, b.traffic);
        prop_assert_eq!(a.invalidations, b.invalidations);
        prop_assert_eq!(a.versions_assigned, b.versions_assigned);
    }
}
