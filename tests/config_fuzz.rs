//! Configuration fuzzing: random machines (size, cluster shape, caches,
//! scheme, directory organization, network model, contention, hints,
//! serial invalidations) running random workloads, with the version oracle
//! and the quiescent coherence checker always on.
//!
//! Any parameter combination that deadlocks, drops a request, resurrects a
//! stale copy, or leaves the directory inconsistent fails loudly here.
//! Seeds recorded in `config_fuzz.proptest-regressions` are additionally
//! promoted to named deterministic tests in `config_fuzz_regressions.rs`,
//! which shares [`fuzz_common`] with this file.

mod fuzz_common;

use fuzz_common::{build_and_run, FuzzConfig};
use proptest::prelude::*;
use scd::core::Scheme;

fn scheme_strategy() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::FullVector),
        (1usize..=4).prop_map(Scheme::dir_b),
        (1usize..=4).prop_map(Scheme::dir_nb),
        (2usize..=4).prop_map(Scheme::dir_x),
        ((1usize..=4), (1usize..=4)).prop_map(|(i, r)| Scheme::dir_cv(i, r)),
    ]
}

fn config_strategy() -> impl Strategy<Value = FuzzConfig> {
    let machine = (
        (2usize..=8),           // clusters
        (1usize..=3),           // procs per cluster
        (1usize..=4),           // l2 sets (blocks = sets * ways)
        (1usize..=2),           // l2 ways
        scheme_strategy(),
        (0u8..3),               // organization: complete / sparse / overflow
        any::<bool>(),          // mesh vs uniform latency
    );
    let features = (
        prop::option::of(1u64..16), // contention occupancy
        any::<bool>(),          // replacement hints
        any::<bool>(),          // serial invalidations
        (4u64..48),             // hot block count
        (0.05f64..0.6),         // write ratio
        any::<bool>(),          // sprinkle locks
        any::<u64>(),           // workload seed
    );
    (machine, features).prop_map(
        |(
            (clusters, ppc, sets, ways, scheme, org, mesh),
            (contention, hints, serial, blocks, write_ratio, locks, seed),
        )| {
            FuzzConfig {
                clusters,
                ppc,
                l2_blocks: sets * ways * 4,
                l2_ways: ways,
                scheme,
                org,
                mesh,
                contention,
                hints,
                serial,
                blocks,
                write_ratio,
                locks,
                seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_configuration_runs_coherently(fz in config_strategy()) {
        let stats = build_and_run(&fz);
        // The run() call already enforced: no deadlock, version-oracle
        // monotonicity, quiescent single-writer + coverage invariants.
        prop_assert!(stats.cycles > 0);
        prop_assert_eq!(
            stats.shared_refs(),
            stats.shared_reads + stats.shared_writes
        );
    }

    #[test]
    fn identical_configurations_are_bit_deterministic(fz in config_strategy()) {
        let a = build_and_run(&fz);
        let b = build_and_run(&fz);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.traffic, b.traffic);
        prop_assert_eq!(a.invalidations, b.invalidations);
        prop_assert_eq!(a.versions_assigned, b.versions_assigned);
    }
}
