//! The version oracle end-to-end: every ownership grant creates a fresh
//! data version; no cluster may ever observe a block regressing to an
//! older version than it has already seen. Running the paper's real
//! workloads with the oracle enabled is a machine-checked coherence proof
//! for those executions.

use scd::apps::{locusroute, lu, mp3d, LocusRouteParams, LuParams, Mp3dParams};
use scd::core::{Replacement, Scheme};
use scd::machine::{Machine, MachineConfig};

#[test]
fn oracle_is_live_and_counts_ownership_epochs() {
    let app = mp3d(&Mp3dParams::scaled(0.1), 32, 3);
    let mut cfg = MachineConfig::paper_32();
    cfg.track_versions = true;
    let stats = Machine::new(cfg, app.boxed_programs()).run();
    assert!(
        stats.versions_assigned > 1_000,
        "MP3D's writes must create many ownership epochs, got {}",
        stats.versions_assigned
    );
}

#[test]
fn paper_workloads_pass_the_oracle_under_every_scheme() {
    let apps = [
        lu(&LuParams { n: 24, update_cost: 2 }, 32, 7),
        mp3d(&Mp3dParams::scaled(0.08), 32, 7),
        locusroute(&LocusRouteParams::scaled(0.15), 32, 7),
    ];
    for app in &apps {
        for scheme in [
            Scheme::FullVector,
            Scheme::dir_cv(3, 2),
            Scheme::dir_b(3),
            Scheme::dir_nb(3),
        ] {
            let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
            cfg.track_versions = true;
            cfg.check_invariants = true;
            cfg.max_cycles = 200_000_000;
            // The run panics if any cluster observes a stale version.
            let stats = Machine::new(cfg, app.boxed_programs()).run();
            assert!(stats.cycles > 0, "{} {scheme:?}", app.name);
        }
    }
}

#[test]
fn sparse_and_overflow_organizations_pass_the_oracle() {
    let app = lu(&LuParams { n: 32, update_cost: 2 }, 32, 9);
    let dataset_blocks = (app.shared_bytes / 16) as usize;
    let scaled = MachineConfig::paper_32().with_scaled_caches((dataset_blocks / 4).max(256));

    let mut sparse_cfg = scaled
        .clone()
        .with_sparse((scaled.total_cache_blocks() / 32).max(4), 4, Replacement::Lru);
    sparse_cfg.track_versions = true;
    sparse_cfg.check_invariants = true;
    let s = Machine::new(sparse_cfg, app.boxed_programs()).run();
    assert!(s.sparse.unwrap().replacements > 0, "replacements exercised");

    let mut of_cfg = MachineConfig::paper_32().with_overflow(2, 8, 4, Replacement::Lru);
    of_cfg.track_versions = true;
    of_cfg.check_invariants = true;
    let o = Machine::new(of_cfg, app.boxed_programs()).run();
    assert!(o.overflow.unwrap().promotions > 0, "promotions exercised");
}

#[test]
fn serial_invalidation_mode_passes_the_oracle() {
    let app = locusroute(&LocusRouteParams::scaled(0.12), 32, 11);
    let mut cfg = MachineConfig::paper_32();
    cfg.serial_invalidations = true;
    cfg.track_versions = true;
    cfg.check_invariants = true;
    let stats = Machine::new(cfg, app.boxed_programs()).run();
    assert!(stats.versions_assigned > 0);
}
