//! Observability suite: the `scd-trace` subsystem must watch the machine
//! without perturbing it. Tracing/metrics left off (or configured inert)
//! keeps a fixed-seed run bit-identical; tracing turned on yields a JSONL
//! transaction log that replays through `validate_trace`'s lifecycle
//! invariants (no reply before its request, retries monotonically backed
//! off), interval snapshots that tile the run, latency metrics with a
//! stable JSON schema, and post-mortems that carry per-cluster trace tails.

use scd::machine::{Machine, MachineConfig, RunStats, SimError};
use scd::noc::FaultPlan;
use scd::sim::SimRng;
use scd::tango::{Op, ScriptProgram, ThreadProgram};
use scd::trace::{
    analyze, extract_trace_lines, to_perfetto, validate_perfetto, validate_stats_json,
    validate_stream, validate_trace, AttribClass, Attribution, BufferSink, ChannelSink, Json,
    SpanTree, TraceConfig,
};

/// A random read/write mix over a small hot block set (the coherence
/// stress suite's shape, shortened for debug builds).
fn random_programs(
    procs: usize,
    ops_per_proc: usize,
    blocks: u64,
    write_ratio: f64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let mut root = SimRng::new(seed);
    (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::with_capacity(ops_per_proc);
            for _ in 0..ops_per_proc {
                let addr = rng.below(blocks) * 16;
                if rng.chance(write_ratio) {
                    ops.push(Op::Write(addr));
                } else {
                    ops.push(Op::Read(addr));
                }
                if rng.chance(0.3) {
                    ops.push(Op::Compute(rng.below(20)));
                }
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect()
}

fn run_with_trace(trace: Option<TraceConfig>, seed: u64) -> (Machine, RunStats) {
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = trace;
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, seed);
    let mut machine = Machine::new(cfg, programs);
    let stats = machine.try_run().expect("run must quiesce");
    (machine, stats)
}

/// The inert-by-default contract (ISSUE 2 acceptance): with tracing and
/// metrics disabled, a fixed-seed run's `RunStats` is bit-identical to a
/// machine that never heard of tracing. The comparison goes through the
/// stable JSON rendering so every exported field participates.
#[test]
fn disabled_tracing_is_bit_identical() {
    let (_, base) = run_with_trace(None, 0x7E1E);
    let (_, inert) = run_with_trace(Some(TraceConfig::none()), 0x7E1E);
    assert_eq!(base.to_json().to_string(), inert.to_json().to_string());
    assert_eq!(base.cycles, inert.cycles);
    assert_eq!(base.traffic, inert.traffic);
}

/// Stronger than the contract requires: the hooks only *read* machine
/// state, so even full tracing with metrics and intervals must not move a
/// single cycle or message.
#[test]
fn active_tracing_does_not_perturb_the_run() {
    let (_, base) = run_with_trace(None, 0x7E1E);
    let full = TraceConfig::full(4096).with_interval(500);
    let (machine, traced) = run_with_trace(Some(full), 0x7E1E);
    assert_eq!(base.to_json().to_string(), traced.to_json().to_string());
    let (recorded, _) = machine.trace_counts();
    assert!(recorded > 0, "tracing was supposed to be on");
}

/// The acceptance-criteria replay test: record a run (with injected NACKs
/// so the retry path fires), export the merged trace as JSONL, and replay
/// it through the validator, which enforces per-transaction phase ordering
/// (begin before phases before end, latency consistent — no reply before
/// its request) and monotonically backed-off retries.
#[test]
fn recorded_trace_replays_with_lifecycle_invariants_intact() {
    let mut cfg = MachineConfig::tiny(6)
        .with_fault(FaultPlan::nack(0.25))
        .with_trace(TraceConfig::full(1 << 16));
    cfg.watchdog_cycles = 1_000_000;
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0xBEEF);
    let mut machine = Machine::new(cfg, programs);
    let stats = machine.try_run().expect("faulty run must still quiesce");
    assert!(stats.faults.retries > 0, "fault plan failed to inject NACKs");

    let jsonl: String = machine
        .trace_events()
        .iter()
        .map(|e| e.to_json().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let summary = validate_trace(&jsonl).unwrap_or_else(|e| panic!("replay failed: {e}"));
    assert!(summary.transactions > 0);
    assert!(summary.completed > 0, "no transaction observed end-to-end");
    assert!(
        summary.by_type.get("retry").copied().unwrap_or(0) > 0,
        "backoff invariant never exercised: {:?}",
        summary.by_type
    );
    assert!(summary.by_type["msg_send"] >= summary.by_type["msg_deliver"]);
}

/// Interval snapshots must tile simulated time: contiguous windows of the
/// configured width, and their retired-op deltas must sum to at most the
/// whole run's total (the tail after the last boundary is not snapshot).
#[test]
fn interval_snapshots_tile_the_run() {
    const PERIOD: u64 = 500;
    let trace = TraceConfig::lifecycle(1024).with_interval(PERIOD);
    let (machine, stats) = run_with_trace(Some(trace), 0x7E1E);
    let intervals = &machine.metrics().intervals;
    assert!(!intervals.is_empty(), "run too short for any interval");
    let mut expect_start = 0;
    for snap in intervals {
        assert_eq!(snap.start, expect_start, "windows must be contiguous");
        assert_eq!(snap.end, snap.start + PERIOD, "windows must be uniform");
        expect_start = snap.end;
    }
    let ops: u64 = intervals.iter().map(|s| s.ops_retired).sum();
    let total = stats.shared_reads + stats.shared_writes + stats.sync_ops;
    assert!(ops <= total, "interval ops {ops} exceed run total {total}");
    assert!(ops > 0, "no operation retired inside any window");
}

/// Latency metrics must see every completed transaction, agree with the
/// machine's own miss accounting, and export under the stable
/// `scd-run-stats/v1` schema (the `BENCH_*.json` / `--stats-json` format).
#[test]
fn metrics_registry_reports_latency_histograms() {
    let (machine, stats) = run_with_trace(Some(TraceConfig::lifecycle(64)), 0x7E1E);
    let m = machine.metrics();
    assert!(m.transactions() > 0);
    assert!(m.read_latency.events() > 0 && m.write_latency.events() > 0);
    assert!(m.read_latency.percentile(0.5) > 0, "a remote read takes cycles");
    assert!(
        m.read_latency.percentile(0.99) >= m.read_latency.percentile(0.5),
        "percentiles must be monotone"
    );
    let doc = stats
        .to_json_document(None, Some(m), None, machine.trace_json(), None)
        .to_string();
    validate_stats_json(&doc).unwrap_or_else(|e| panic!("schema broke: {e}\n{doc}"));
}

/// Attribution-only profiling obeys the same inertness contract as the
/// rest of the subsystem: byte/flit/link counters may not move a cycle,
/// and the counters themselves live *outside* `RunStats`, so the exported
/// stats stay bit-identical while the machine gains an attribution view.
#[test]
fn attribution_counters_do_not_perturb_the_run() {
    let (_, base) = run_with_trace(None, 0x7E1E);
    let mut tc = TraceConfig::none();
    tc.attribution = true;
    let (machine, stats) = run_with_trace(Some(tc), 0x7E1E);
    assert_eq!(base.to_json().to_string(), stats.to_json().to_string());
    let attrib = machine.attribution().expect("attribution was on");
    assert_eq!(
        attrib.totals().messages,
        stats.traffic.total(),
        "every message the traffic tally saw must be classified"
    );
    let doc = stats
        .to_json_document(None, None, machine.attribution_json(stats.cycles), None, None)
        .to_string();
    validate_stats_json(&doc).unwrap_or_else(|e| panic!("attrib schema broke: {e}\n{doc}"));
}

/// The online send-hook counters and an offline pass over the recorded
/// event stream are two independent implementations of the same
/// classification; with a ring deep enough to drop nothing they must agree
/// class-for-class on messages, bytes, flits, and flit-hops.
#[test]
fn online_and_offline_attribution_agree() {
    let (machine, _) = run_with_trace(Some(TraceConfig::full(1 << 16)), 0x7E1E);
    let (_, dropped) = machine.trace_counts();
    assert_eq!(dropped, 0, "ring too small; offline pass would be partial");
    let online = machine.attribution().expect("full tracing enables attribution");
    let offline = Attribution::from_events(&machine.trace_events(), online.params());
    assert_eq!(online.totals(), offline.totals());
    for class in AttribClass::ALL {
        assert_eq!(online.class(class), offline.class(class), "{}", class.label());
    }
}

/// Span-tree well-formedness on a clean run: every `TxnBegin` that saw its
/// `TxnEnd` closes, phases tile the transaction contiguously, and message
/// leaves nest inside their phase — `SpanTree::check` enforces all of it.
#[test]
fn span_tree_is_well_formed_for_a_clean_run() {
    let (machine, _) = run_with_trace(Some(TraceConfig::full(1 << 16)), 0x7E1E);
    let tree = SpanTree::from_events(&machine.trace_events());
    tree.check().unwrap_or_else(|e| panic!("malformed span tree: {e}"));
    assert!(tree.completed() > 0, "no transaction completed");
    assert_eq!(
        tree.txns.iter().filter(|t| t.end.is_none()).count(),
        0,
        "a quiesced run leaves no transaction open"
    );
    assert!(tree.attributed_msgs() > 0, "no message found its transaction");
}

/// The tree must stay well-formed when the protocol is under attack:
/// injected NACKs force retries, which stretch transactions across many
/// issue phases, and the span builder may not tangle them.
#[test]
fn span_tree_is_well_formed_under_nack_retry_faults() {
    let mut cfg = MachineConfig::tiny(6)
        .with_fault(FaultPlan::nack(0.25))
        .with_trace(TraceConfig::full(1 << 16));
    cfg.watchdog_cycles = 1_000_000;
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0xBEEF);
    let mut machine = Machine::new(cfg, programs);
    machine.try_run().expect("faulty run must still quiesce");
    let tree = SpanTree::from_events(&machine.trace_events());
    tree.check().unwrap_or_else(|e| panic!("malformed span tree under faults: {e}"));
    assert!(
        tree.txns.iter().any(|t| t.retries > 0),
        "fault plan never forced a retry"
    );
    assert!(
        tree.txns.iter().any(|t| t.nacks > 0),
        "fault plan never landed a NACK"
    );
}

/// The Perfetto export of a traced run must pass the schema/stack checks
/// `scd-validate --perfetto` applies: slices nest per lane, counter tracks
/// ride on their own pid, and metadata names every cluster process.
#[test]
fn perfetto_export_passes_validation() {
    let trace = TraceConfig::full(1 << 16).with_interval(500);
    let (machine, _) = run_with_trace(Some(trace), 0x7E1E);
    let tree = SpanTree::from_events(&machine.trace_events());
    let doc = to_perfetto(&tree, &machine.metrics().intervals).to_string();
    let summary =
        validate_perfetto(&doc).unwrap_or_else(|e| panic!("perfetto export invalid: {e}"));
    assert!(summary.slices > 0, "no slices exported");
    assert!(summary.counters > 0, "interval counters missing");
    assert!(summary.meta > 0, "process-name metadata missing");
    // Folded stacks come from the same tree; a quick sanity pass.
    let folded = tree.to_folded();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack <space> weight");
        assert!(weight.parse::<u64>().is_ok(), "bad weight in {line:?}");
        assert!(
            stack.starts_with("read")
                || stack.starts_with("write")
                || stack.starts_with("background"),
            "stack root must be a transaction kind or the background lane: {line:?}"
        );
    }
}

/// PR 1's post-mortems gain causal history: when a NACK storm trips the
/// livelock watchdog under tracing, the `PostMortem` must attach the
/// starving cluster's trace tail, and the rendered report must show it.
#[test]
fn post_mortem_attaches_trace_tails_for_stuck_clusters() {
    let cfg = MachineConfig::tiny(2)
        .with_fault(FaultPlan::nack(1.0))
        .with_watchdog(50_000)
        .with_trace(TraceConfig::full(256));
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(ScriptProgram::new(vec![])),
        // Block 0's home is cluster 0, so cluster 1's read is remote and
        // retries forever against the permanent NACKs.
        Box::new(ScriptProgram::new(vec![Op::Read(0)])),
    ];
    let err = Machine::new(cfg, programs).try_run().expect_err("must livelock");
    let SimError::LivelockWatchdog(pm) = &err else {
        panic!("expected LivelockWatchdog, got {err}");
    };
    assert!(!pm.trace_tails.is_empty(), "no trace tail attached: {err}");
    let tail_text: String = pm
        .trace_tails
        .iter()
        .flat_map(|(_, lines)| lines.iter())
        .cloned()
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        tail_text.contains("Retry") || tail_text.contains("Nack"),
        "tail shows the NACK/retry storm: {tail_text}"
    );
    assert!(err.to_string().contains("trace tail"), "{err}");
}

/// Without tracing the post-mortem stays as PR 1 shipped it: no tails.
#[test]
fn post_mortem_has_no_tails_when_tracing_is_off() {
    let cfg = MachineConfig::tiny(2)
        .with_fault(FaultPlan::nack(1.0))
        .with_watchdog(50_000);
    let programs: Vec<Box<dyn ThreadProgram>> = vec![
        Box::new(ScriptProgram::new(vec![])),
        Box::new(ScriptProgram::new(vec![Op::Read(0)])),
    ];
    let err = Machine::new(cfg, programs).try_run().expect_err("must livelock");
    assert!(err.post_mortem().trace_tails.is_empty());
}

/// Builds a traced machine with a `BufferSink` attached, runs it, and
/// returns the machine, its stats, and the captured stream text.
fn run_streamed(
    trace: TraceConfig,
    fault: Option<FaultPlan>,
    seed: u64,
) -> (Machine, RunStats, String) {
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(trace);
    if let Some(f) = fault {
        cfg = cfg.with_fault(f);
        cfg.watchdog_cycles = 1_000_000;
    }
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, seed);
    let mut machine = Machine::new(cfg, programs);
    let sink = BufferSink::new();
    let lines = sink.handle();
    machine.attach_stream(
        Box::new(sink),
        Some(Json::obj().with("app", Json::Str("stress".into()))),
    );
    let stats = machine.try_run().expect("streamed run must quiesce");
    let text = lines.lock().unwrap().join("\n") + "\n";
    (machine, stats, text)
}

/// The streamed trace is not a lossy preview: for a seeded run whose rings
/// never evict, the trace-event lines pulled out of the live stream are
/// byte-for-byte the post-hoc `--trace-out` document — same events, same
/// `(cycle, seq)` merge order, same rendering.
#[test]
fn streamed_trace_is_byte_identical_to_post_hoc_export() {
    let (machine, _, stream) = run_streamed(TraceConfig::full(1 << 16), None, 0x7E1E);
    let (_, dropped) = machine.trace_counts();
    assert_eq!(dropped, 0, "ring too small for the equivalence to hold");
    let post_hoc: String = machine
        .trace_events()
        .iter()
        .map(|e| format!("{}\n", e.to_json()))
        .collect();
    assert!(!post_hoc.is_empty());
    assert_eq!(extract_trace_lines(&stream), post_hoc);
    let summary = validate_stream(&stream).unwrap_or_else(|e| panic!("stream invalid: {e}"));
    assert!(summary.run_ended, "stream must close with run_end");
    assert!(summary.intervals == 0, "no intervals were configured");
}

/// Same equivalence with the protocol under attack: NACK/retry storms and
/// injected delay spikes reorder event *recording* heavily (retries stretch
/// transactions across phases recorded on different clusters), and the
/// watermark flush must still reproduce the merge exactly — with interval
/// records interleaved this time.
#[test]
fn streamed_trace_survives_nack_and_delay_faults() {
    let plan = FaultPlan::parse("nack:0.25,delay:0.05:150").expect("fault spec");
    let trace = TraceConfig::full(1 << 16).with_interval(500);
    let (machine, stats, stream) = run_streamed(trace, Some(plan), 0xBEEF);
    assert!(stats.faults.retries > 0, "no retry was injected");
    assert!(stats.faults.delay_spikes > 0, "no delay spike was injected");
    let (_, dropped) = machine.trace_counts();
    assert_eq!(dropped, 0, "ring too small for the equivalence to hold");
    let post_hoc: String = machine
        .trace_events()
        .iter()
        .map(|e| format!("{}\n", e.to_json()))
        .collect();
    assert_eq!(extract_trace_lines(&stream), post_hoc);
    let summary = validate_stream(&stream).unwrap_or_else(|e| panic!("stream invalid: {e}"));
    assert!(summary.intervals > 0, "intervals were configured");
    assert!(summary.run_ended);
}

/// Regression: a duplicated request from an already-completed transaction
/// can be re-delivered to the home *after* a successor transaction on the
/// same (requester, block) has begun — and, because the successor's begin
/// is stamped a cache-lookup ahead of the pop that created it, the stale
/// delivery's cycle can precede that begin. The lifecycle hooks must not
/// attribute predecessor traffic to the live transaction, or the exported
/// trace shows a transaction whose home_lookup predates its begin and
/// `validate_trace` rejects the file.
#[test]
fn stale_duplicate_deliveries_are_not_attributed_to_successor_txns() {
    for seed in [0xBEEFu64, 0x7E1E, 11, 23, 99] {
        let plan = FaultPlan::parse("nack:0.05,dup:0.1,delay:0.05:150").expect("fault spec");
        let mut cfg = MachineConfig::tiny(6)
            .with_fault(plan)
            .with_trace(TraceConfig::full(1 << 16));
        cfg.watchdog_cycles = 1_000_000;
        let programs = random_programs(cfg.processors(), 400, 12, 0.5, seed);
        let mut machine = Machine::new(cfg, programs);
        let stats = machine.try_run().expect("faulty run must still quiesce");
        assert!(stats.faults.duplicates > 0, "no duplicate was injected");
        let jsonl: String = machine
            .trace_events()
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        validate_trace(&jsonl)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: stale attribution leaked: {e}"));
    }
}

/// Attaching a stream may not move the simulation: the exported stats of a
/// streamed run are bit-identical to the same seed traced without a sink,
/// and to the untraced baseline.
#[test]
fn attached_stream_does_not_perturb_the_run() {
    let (_, base) = run_with_trace(None, 0x7E1E);
    let (_, _, _) = run_streamed(TraceConfig::full(1 << 16), None, 0x7E1E);
    let (_, streamed, _) = run_streamed(TraceConfig::full(1 << 16), None, 0x7E1E);
    assert_eq!(base.to_json().to_string(), streamed.to_json().to_string());
}

/// The bounded-channel sink never blocks the simulation and never lies
/// about loss: lines delivered plus lines dropped equals the lines an
/// unbounded sink captured for the identical run, and the drop counter is
/// visible while the machine still owns the sink.
#[test]
fn channel_sink_accounts_for_every_dropped_line() {
    let (_, _, full) = run_streamed(TraceConfig::full(1 << 16), None, 0x7E1E);
    let total = full.lines().count() as u64;

    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(TraceConfig::full(1 << 16));
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0x7E1E);
    let mut machine = Machine::new(cfg, programs);
    const CAPACITY: usize = 8;
    let (sink, rx) = ChannelSink::bounded(CAPACITY);
    let drops = sink.drop_counter();
    machine.attach_stream(Box::new(sink), None);
    // Nobody drains `rx` during the run, so the channel fills and every
    // further line must be counted as dropped, not block the machine.
    machine.try_run().expect("backpressured run must quiesce");
    let delivered = rx.try_iter().count() as u64;
    let dropped = drops.load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(delivered, CAPACITY as u64, "channel holds exactly its bound");
    assert!(dropped > 0, "run too small to overflow the channel");
    // The unstreamed twin had a run_meta line this run did not (attach_stream
    // got `None`), hence the -1.
    assert_eq!(delivered + dropped, total - 1);
}

/// Critical-path decomposition is exact, not approximate: for every
/// completed transaction, per-phase queueing + service equals the phase
/// duration, the phase costs sum to the transaction's end-to-end latency,
/// and the report is ordered slowest-first.
#[test]
fn critical_path_costs_tile_every_transaction() {
    let plan = FaultPlan::nack(0.25);
    let trace = TraceConfig::full(1 << 16);
    let (machine, _, _) = run_streamed(trace, Some(plan), 0xBEEF);
    let tree = SpanTree::from_events(&machine.trace_events());
    let report = analyze(&tree);
    assert!(!report.txns.is_empty(), "no completed transaction to analyze");
    for txn in &report.txns {
        let mut total = 0;
        for phase in &txn.phases {
            assert_eq!(
                phase.queueing + phase.service,
                phase.duration(),
                "txn {} phase {} does not tile",
                txn.txn,
                phase.phase
            );
            total += phase.duration();
        }
        assert_eq!(
            total, txn.latency,
            "txn {} phases do not sum to its latency",
            txn.txn
        );
        assert_eq!(txn.queueing + txn.service, txn.latency);
    }
    for pair in report.txns.windows(2) {
        assert!(pair[0].latency >= pair[1].latency, "report must be sorted");
    }
    assert_eq!(
        report.total_queueing() + report.total_service(),
        report.txns.iter().map(|t| t.latency).sum::<u64>()
    );
    // Under a 25% NACK plan some transaction must have spent time waiting
    // on the network (queueing), not just in flight.
    assert!(report.total_queueing() > 0, "no queueing under a NACK storm?");
    let doc = report.to_json(5).to_string();
    assert!(doc.contains("\"schema\":\"scd-critical/v1\""), "{doc}");
}

/// Bounded rings evict oldest-first under pressure but never corrupt the
/// merge: a truncated trace still replays cleanly and reports drops.
#[test]
fn tiny_rings_evict_but_the_merge_still_validates() {
    let trace = TraceConfig::full(8);
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(trace);
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0x7E1E);
    let mut machine = Machine::new(cfg, programs);
    machine.try_run().expect("run must quiesce");
    let (recorded, dropped) = machine.trace_counts();
    assert!(dropped > 0, "8-deep rings must overflow on this run");
    assert!(recorded > dropped);
    let jsonl: String = machine
        .trace_events()
        .iter()
        .map(|e| e.to_json().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    let summary = validate_trace(&jsonl).unwrap_or_else(|e| panic!("replay failed: {e}"));
    assert_eq!(summary.events + dropped, recorded);
}

/// Ring eviction is a first-class statistic: an evicting run's
/// `scd-run-stats/v1` document carries `trace.dropped_events`, the value
/// matches the machine's counter, and the schema validator enforces the
/// section's consistency (drops can never exceed recordings).
#[test]
fn dropped_events_surface_in_the_stats_document() {
    let mut cfg = MachineConfig::tiny(6);
    cfg.trace = Some(TraceConfig::full(8));
    let programs = random_programs(cfg.processors(), 250, 24, 0.4, 0x7E1E);
    let mut machine = Machine::new(cfg, programs);
    let stats = machine.try_run().expect("run must quiesce");
    let (recorded, dropped) = machine.trace_counts();
    assert!(dropped > 0, "8-deep rings must overflow on this run");

    let trace = machine.trace_json().expect("tracing was on");
    assert_eq!(trace.get("recorded").and_then(Json::as_u64), Some(recorded));
    assert_eq!(
        trace.get("dropped_events").and_then(Json::as_u64),
        Some(dropped)
    );
    let doc = stats
        .to_json_document(None, None, None, Some(trace), None)
        .to_string();
    validate_stats_json(&doc).unwrap_or_else(|e| panic!("trace section broke: {e}\n{doc}"));

    // An untraced run exports `trace: null`, and that validates too.
    let (_, untraced) = run_with_trace(None, 0x7E1E);
    let doc = untraced.to_json_document(None, None, None, None, None).to_string();
    assert!(doc.contains("\"trace\":null"), "{doc}");
    validate_stats_json(&doc).unwrap_or_else(|e| panic!("null trace broke: {e}"));

    // And the validator rejects an over-claiming section.
    let lying = Json::obj()
        .with("recorded", Json::U64(1))
        .with("dropped_events", Json::U64(2));
    let doc = stats.to_json_document(None, None, None, Some(lying), None).to_string();
    assert!(validate_stats_json(&doc).is_err(), "dropped > recorded passed");
}

/// The directory observatory obeys the same inert contract as the rest of
/// the trace subsystem: a patterns-enabled run does not move a cycle or a
/// message, and its occupancy section validates inside the standalone
/// `scd-patterns/v1` document.
#[test]
fn patterns_telemetry_does_not_perturb_and_validates() {
    use scd::trace::{validate_patterns_json, PatternTable};
    let (_, base) = run_with_trace(None, 0x7E1E);
    let mut tc = TraceConfig::full(1 << 16);
    tc.patterns = true;
    tc.interval = 200;
    let (machine, stats) = run_with_trace(Some(tc), 0x7E1E);
    assert_eq!(base.to_json().to_string(), stats.to_json().to_string());

    let occupancy = machine.occupancy_json().expect("patterns were on");
    let mut table = PatternTable::new();
    for ev in machine.trace_events() {
        table.observe_event(&ev.to_json());
    }
    assert!(table.tracked_blocks() > 0, "run touched shared blocks");
    let doc = table.document(None, Some(occupancy)).to_string();
    validate_patterns_json(&doc).unwrap_or_else(|e| panic!("patterns doc broke: {e}\n{doc}"));
}

/// The classifier is a pure function of the `(cycle, seq)`-ordered event
/// stream: feeding the live machine's merged events and replaying the
/// rendered JSONL text of the same events must produce byte-identical
/// documents (the `scdsim --patterns-out` vs `scd-patterns` contract CI
/// checks on real runs).
#[test]
fn online_patterns_match_trace_replay_byte_for_byte() {
    use scd::trace::PatternTable;
    let mut tc = TraceConfig::full(1 << 16);
    tc.patterns = true;
    let (machine, _) = run_with_trace(Some(tc), 0xBEEF);
    let mut online = PatternTable::new();
    let mut text = String::new();
    for ev in machine.trace_events() {
        let j = ev.to_json();
        online.observe_event(&j);
        text.push_str(&j.to_string());
        text.push('\n');
    }
    let replay = PatternTable::from_trace(&text).expect("trace replays");
    assert_eq!(
        online.document(None, None).to_string(),
        replay.document(None, None).to_string()
    );
    assert!(online.events() > 0);
}
