//! The paper's headline qualitative claims, asserted end-to-end at reduced
//! scale (the full-scale numbers live in EXPERIMENTS.md and the `bench`
//! binaries).

use scd::apps::{dwf, locusroute, lu, mp3d, DwfParams, LocusRouteParams, LuParams, Mp3dParams};
use scd::core::analysis::{average_invalidations, extraneous_area, invalidation_curve};
use scd::core::{overhead, DirectoryChoice, MachineSpec, Replacement, Scheme};
use scd::machine::{Machine, MachineConfig, RunStats};

const PROCS: usize = 32;
const SEED: u64 = 0xD45B;

fn run(app: &scd::apps::AppRun, scheme: Scheme) -> RunStats {
    let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
    cfg.check_invariants = true;
    Machine::new(cfg, app.boxed_programs()).run()
}

#[test]
fn claim_fig2_coarse_vector_beats_broadcast_and_superset() {
    // "the proposed scheme is at least as good as the limited pointer
    // scheme with broadcast" and Dir3X "is only marginally better than the
    // broadcast scheme".
    let p = 32;
    let ev = 2_000;
    let cv = extraneous_area(&invalidation_curve(Scheme::dir_cv(3, 2), p, ev, 1));
    let x = extraneous_area(&invalidation_curve(Scheme::dir_x(3), p, ev, 1));
    let b = extraneous_area(&invalidation_curve(Scheme::dir_b(3), p, ev, 1));
    assert!(cv < x && x < b);
    assert!(b - x < 0.2 * b, "X is only marginally better than B");
    assert!(cv < 0.5 * b, "CV has a much smaller extraneous area");
    // Broadcast goes straight to P-2 past the pointer count.
    assert_eq!(average_invalidations(Scheme::dir_b(3), p, 4, 500, 2), 30.0);
}

#[test]
fn claim_lu_punishes_non_broadcast() {
    // "In LU each matrix column is read by all processors just after the
    // pivot step... Dir NB does very poorly": greatly increased requests,
    // replies, invalidations and acknowledgements.
    let app = lu(&LuParams { n: 32, update_cost: 4 }, PROCS, SEED);
    let full = run(&app, Scheme::FullVector);
    let nb = run(&app, Scheme::dir_nb(3));
    let b = run(&app, Scheme::dir_b(3));
    assert!(
        nb.traffic.total() as f64 > 1.4 * full.traffic.total() as f64,
        "nb={} full={}",
        nb.traffic.total(),
        full.traffic.total()
    );
    assert!(nb.cycles > full.cycles);
    // Broadcast and full vector are nearly indistinguishable for LU.
    assert!(
        (b.traffic.total() as f64 - full.traffic.total() as f64).abs()
            < 0.05 * full.traffic.total() as f64
    );
}

#[test]
fn claim_mp3d_is_easy_for_every_scheme() {
    // "This sharing pattern causes an invalidation distribution that all
    // schemes can handle well... even the non-broadcast scheme takes only
    // .4% longer to run."
    let app = mp3d(&Mp3dParams::scaled(0.3), PROCS, SEED);
    let full = run(&app, Scheme::FullVector);
    for scheme in [Scheme::dir_cv(3, 2), Scheme::dir_b(3), Scheme::dir_nb(3)] {
        let s = run(&app, scheme);
        let ratio = s.cycles as f64 / full.cycles as f64;
        assert!(
            (0.99..1.02).contains(&ratio),
            "{scheme:?}: {ratio} should be within 2% of full vector"
        );
    }
}

#[test]
fn claim_locusroute_broadcast_blowup_and_nb_over_b() {
    // "LocusRoute is interesting in that it is the only application in
    // which the Dir NB scheme outperforms Dir B."
    let app = locusroute(&LocusRouteParams::scaled(0.4), PROCS, SEED);
    let full = run(&app, Scheme::FullVector);
    let cv = run(&app, Scheme::dir_cv(3, 2));
    let b = run(&app, Scheme::dir_b(3));
    let nb = run(&app, Scheme::dir_nb(3));
    assert!(
        b.traffic.total() as f64 > 1.8 * full.traffic.total() as f64,
        "broadcast must blow up traffic"
    );
    assert!(nb.traffic.total() < b.traffic.total(), "NB beats B here");
    // CV stays close to full vector in traffic (paper: ~12% worst case).
    let cv_ratio = cv.traffic.total() as f64 / full.traffic.total() as f64;
    assert!(cv_ratio < 1.25, "cv_ratio={cv_ratio}");
    // And CV is the best limited scheme by execution time.
    assert!(cv.cycles <= b.cycles && cv.cycles <= nb.cycles);
}

#[test]
fn claim_coarse_vector_is_robust_across_all_apps() {
    // "the coarse vector scheme always does at least as well as all other
    // limited-pointer schemes and is much more robust... its performance is
    // always closest to the full bit vector scheme."
    let apps = [
        lu(&LuParams { n: 32, update_cost: 4 }, PROCS, SEED),
        dwf(&DwfParams::scaled(0.3), PROCS, SEED),
        mp3d(&Mp3dParams::scaled(0.25), PROCS, SEED),
        locusroute(&LocusRouteParams::scaled(0.3), PROCS, SEED),
    ];
    for app in &apps {
        let full = run(app, Scheme::FullVector);
        let cv = run(app, Scheme::dir_cv(3, 2));
        let b = run(app, Scheme::dir_b(3));
        let nb = run(app, Scheme::dir_nb(3));
        let time = |s: &RunStats| s.cycles as f64 / full.cycles as f64;
        assert!(
            time(&cv) <= time(&b) + 0.01 && time(&cv) <= time(&nb) + 0.01,
            "{}: cv={} b={} nb={}",
            app.name,
            cv.cycles,
            b.cycles,
            nb.cycles
        );
        assert!(
            time(&cv) < 1.10,
            "{}: coarse vector within 10% of full vector",
            app.name
        );
    }
}

#[test]
fn claim_sparse_directories_cost_little_time() {
    // "even directories with the same size as the processor caches perform
    // well. The worst case application (LU) shows only a 1.4% increase...";
    // we allow a few percent at our scale.
    let app = lu(&LuParams { n: 48, update_cost: 4 }, PROCS, SEED);
    let dataset_blocks = (app.shared_bytes / 16) as usize;
    let base = MachineConfig::paper_32().with_scaled_caches((dataset_blocks / 8).max(256));
    let baseline = Machine::new(base.clone(), app.boxed_programs()).run();
    for factor in [1usize, 2, 4] {
        let per_home = (base.total_cache_blocks() * factor / base.clusters)
            .div_ceil(4)
            * 4;
        let mut cfg = base
            .clone()
            .with_sparse(per_home.max(4), 4, Replacement::Random);
        cfg.check_invariants = true;
        let stats = Machine::new(cfg, app.boxed_programs()).run();
        let ratio = stats.cycles as f64 / baseline.cycles as f64;
        assert!(
            ratio < 1.06,
            "size factor {factor}: exec time ratio {ratio} too high"
        );
        assert!(stats.sparse.unwrap().replacements > 0 || factor > 1);
    }
}

#[test]
fn claim_sparse_storage_savings_one_to_two_orders() {
    // "sparse directories coupled with coarse vectors can save one to two
    // orders of magnitude in storage."
    let spec = MachineSpec::paper_defaults(64); // 256 processors
    let complete_full = overhead(
        &spec,
        &DirectoryChoice {
            scheme: Scheme::FullVector,
            sparsity: 1,
        },
    );
    let sparse_cv = overhead(
        &spec,
        &DirectoryChoice {
            scheme: Scheme::dir_cv_auto(3, 64),
            sparsity: 16,
        },
    );
    let ratio = complete_full.total_bits as f64 / sparse_cv.total_bits as f64;
    assert!(
        (10.0..200.0).contains(&ratio),
        "storage savings {ratio} should be 1-2 orders of magnitude"
    );
}

#[test]
fn claim_dash_prototype_overhead() {
    // "the corresponding directory memory overhead is 17 bits per 16 byte
    // main memory block, i.e., 13.3%."
    let r = overhead(
        &MachineSpec::paper_defaults(16),
        &DirectoryChoice {
            scheme: Scheme::FullVector,
            sparsity: 1,
        },
    );
    assert_eq!(r.entry_bits, 17);
    assert!((r.overhead * 100.0 - 13.3).abs() < 0.05);
}

#[test]
fn claim_associativity_helps_and_lra_is_worst() {
    // §6.3.2: higher associativity (weakly) reduces traffic; LRU and random
    // beat LRA.
    let app = lu(&LuParams { n: 48, update_cost: 4 }, PROCS, SEED);
    let dataset_blocks = (app.shared_bytes / 16) as usize;
    let base = MachineConfig::paper_32().with_scaled_caches((dataset_blocks / 8).max(256));
    let per_home = (base.total_cache_blocks() / base.clusters).div_ceil(4) * 4;

    let run_with = |ways: usize, policy: Replacement| {
        let entries = per_home.div_ceil(ways) * ways;
        let cfg = base.clone().with_sparse(entries.max(ways), ways, policy);
        Machine::new(cfg, app.boxed_programs()).run().traffic.total()
    };
    let a1 = run_with(1, Replacement::Random);
    let a4 = run_with(4, Replacement::Random);
    assert!(
        a4 as f64 <= a1 as f64 * 1.02,
        "assoc 4 ({a4}) should not lose to direct-mapped ({a1})"
    );
    let lru = run_with(4, Replacement::Lru);
    let lra = run_with(4, Replacement::Lra);
    assert!(
        lru as f64 <= lra as f64 * 1.03,
        "LRU ({lru}) should not lose to LRA ({lra})"
    );
}
