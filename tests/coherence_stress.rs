//! Cross-crate coherence stress: randomized workloads over every scheme and
//! directory organization, with the quiescent invariant checker enabled.
//!
//! These tests exist to push the protocol through its rare paths (writeback
//! races, deferred forwards, sparse replacement of dirty victims, fully
//! pinned sets) and prove the machine still quiesces coherently.

use scd::core::{Replacement, Scheme};
use scd::machine::{Machine, MachineConfig, RunStats};
use scd::sim::SimRng;
use scd::tango::{Op, ScriptProgram, ThreadProgram};

/// A random mix of reads/writes over a small hot block set — maximal
/// conflict pressure.
fn random_programs(
    procs: usize,
    ops_per_proc: usize,
    blocks: u64,
    write_ratio: f64,
    seed: u64,
) -> Vec<Box<dyn ThreadProgram>> {
    let mut root = SimRng::new(seed);
    (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::with_capacity(ops_per_proc);
            for _ in 0..ops_per_proc {
                let addr = rng.below(blocks) * 16;
                if rng.chance(write_ratio) {
                    ops.push(Op::Write(addr));
                } else {
                    ops.push(Op::Read(addr));
                }
                if rng.chance(0.3) {
                    ops.push(Op::Compute(rng.below(20)));
                }
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect()
}

fn stress(cfg: MachineConfig, blocks: u64, write_ratio: f64, seed: u64) -> RunStats {
    let programs = random_programs(cfg.processors(), 400, blocks, write_ratio, seed);
    Machine::new(cfg, programs).run()
}

fn all_schemes() -> Vec<Scheme> {
    vec![
        Scheme::FullVector,
        Scheme::dir_b(3),
        Scheme::dir_nb(3),
        Scheme::dir_x(3),
        Scheme::dir_cv(3, 2),
        Scheme::dir_cv(1, 4),
        Scheme::dir_b(1),
        Scheme::dir_nb(1),
    ]
}

#[test]
fn every_scheme_survives_hot_conflict_stress() {
    for scheme in all_schemes() {
        let cfg = MachineConfig::tiny(8).with_scheme(scheme);
        let stats = stress(cfg, 24, 0.4, 0xC0FFEE);
        assert!(stats.cycles > 0, "{scheme:?}");
        assert_eq!(stats.shared_refs(), stats.shared_reads + stats.shared_writes);
    }
}

#[test]
fn sparse_directories_survive_hot_conflict_stress() {
    for scheme in [Scheme::FullVector, Scheme::dir_cv(2, 2), Scheme::dir_b(2)] {
        for (entries, ways) in [(4, 1), (4, 2), (8, 4)] {
            for policy in [Replacement::Lru, Replacement::Random, Replacement::Lra] {
                let cfg = MachineConfig::tiny(6)
                    .with_scheme(scheme)
                    .with_sparse(entries, ways, policy);
                // 32 blocks per home >> 8 directory entries per home.
                let stats = stress(cfg, 192, 0.35, 0xBEEF);
                let sp = stats.sparse.expect("sparse stats");
                assert!(
                    sp.replacements > 0,
                    "{scheme:?} {entries}/{ways} {policy:?}: stress must force replacements"
                );
            }
        }
    }
}

#[test]
fn rare_protocol_paths_are_actually_exercised() {
    // Tiny caches + hot blocks + high write ratio => dirty evictions chase
    // forwards (races), grants collide with forwards (deferred forwards).
    let mut races = 0;
    let mut forwards = 0;
    let mut deferred = 0;
    for seed in 0..12 {
        let mut cfg = MachineConfig::tiny(8);
        cfg.l1_blocks = 2;
        cfg.l2_blocks = 4;
        cfg.l2_ways = 2;
        let stats = stress(cfg, 64, 0.5, seed);
        races += stats.protocol.races;
        forwards += stats.protocol.forwards;
        deferred += stats.queue_metrics.1;
    }
    assert!(forwards > 100, "forwards: {forwards}");
    assert!(races > 0, "writeback races never hit: widen the stress");
    assert!(deferred > 0, "home queueing never hit: widen the stress");
    // (`self_owned_parks` is defensive: a cluster's own request follows its
    // writeback on the same FIFO channel, so the home normally sees the
    // writeback first and the park path stays cold.)
}

#[test]
fn sparse_stalls_resolve_rather_than_deadlock() {
    // 1 entry x 1 way per home and many hot blocks: sets get pinned by
    // in-flight replacements, exercising the Stalled path.
    let mut stalls = 0;
    for seed in 0..6 {
        let cfg = MachineConfig::tiny(4).with_sparse(1, 1, Replacement::Lru);
        let stats = stress(cfg, 32, 0.45, 0xA11CE + seed);
        stalls += stats.protocol.sparse_stalls;
        assert!(stats.protocol.replacement_flushes > 0);
    }
    // Stalls are timing-dependent; with a 1-entry directory they should
    // occur at least occasionally across seeds.
    assert!(stalls > 0, "fully-pinned-set path never hit");
}

#[test]
fn nb_eviction_storm_stays_coherent() {
    // Everyone repeatedly reads the same few blocks under Dir1NB: constant
    // pointer eviction + reread churn.
    let cfg = MachineConfig::tiny(8).with_scheme(Scheme::dir_nb(1));
    let stats = stress(cfg, 4, 0.05, 7);
    assert!(stats.protocol.nb_evictions > 100);
}

#[test]
fn multiprocessor_clusters_survive_stress() {
    // DASH hardware shape: 4 processors per cluster. Exercises the bus
    // supply, local ownership transfer, unsolicited sharing writebacks and
    // their interaction with forwards.
    for scheme in [
        Scheme::FullVector,
        Scheme::dir_b(2),
        Scheme::dir_nb(2),
        Scheme::dir_cv(2, 2),
    ] {
        for seed in 0..4 {
            let mut cfg = MachineConfig::tiny(4).with_scheme(scheme);
            cfg.procs_per_cluster = 4;
            let stats = stress(cfg, 24, 0.4, 0xD0D0 + seed);
            assert!(stats.cycles > 0, "{scheme:?} seed {seed}");
        }
    }
}

#[test]
fn multiprocessor_sparse_clusters_survive_stress() {
    for seed in 0..4 {
        let mut cfg = MachineConfig::tiny(4)
            .with_scheme(Scheme::dir_cv(2, 2))
            .with_sparse(4, 2, Replacement::Lru);
        cfg.procs_per_cluster = 4;
        let stats = stress(cfg, 96, 0.4, 0xF00D + seed);
        assert!(stats.sparse.unwrap().replacements > 0, "seed {seed}");
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let run = |scheme| {
        let cfg = MachineConfig::tiny(8).with_scheme(scheme);
        let s = stress(cfg, 24, 0.4, 99);
        (s.cycles, s.traffic, s.invalidations)
    };
    for scheme in all_schemes() {
        assert_eq!(run(scheme), run(scheme), "{scheme:?} not deterministic");
    }
}

#[test]
fn locks_and_data_interleave_coherently() {
    // Lock-protected read-modify-write on hot blocks + unprotected noise.
    let procs = 8;
    let mut root = SimRng::new(1234);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::new();
            for _ in 0..60 {
                let l = rng.below(3) as u32;
                ops.push(Op::Lock(l));
                ops.push(Op::Read(l as u64 * 16));
                ops.push(Op::Compute(rng.below(10)));
                ops.push(Op::Write(l as u64 * 16));
                ops.push(Op::Unlock(l));
                ops.push(Op::Read(rng.below(20) * 16));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect();
    for scheme in [Scheme::FullVector, Scheme::dir_cv(1, 2), Scheme::dir_b(2)] {
        let cfg = MachineConfig::tiny(procs).with_scheme(scheme);
        let stats = Machine::new(cfg, {
            // Rebuild identical programs for each scheme run.
            let mut root = SimRng::new(1234);
            (0..procs)
                .map(|p| {
                    let mut rng = root.fork(p as u64);
                    let mut ops = Vec::new();
                    for _ in 0..60 {
                        let l = rng.below(3) as u32;
                        ops.push(Op::Lock(l));
                        ops.push(Op::Read(l as u64 * 16));
                        ops.push(Op::Compute(rng.below(10)));
                        ops.push(Op::Write(l as u64 * 16));
                        ops.push(Op::Unlock(l));
                        ops.push(Op::Read(rng.below(20) * 16));
                    }
                    Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
                })
                .collect()
        })
        .run();
        let (grants, _) = stats.lock_metrics;
        assert_eq!(
            grants,
            (procs * 60) as u64,
            "{scheme:?}: every acquire granted exactly once"
        );
    }
    let _ = programs;
}
