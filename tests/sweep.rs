//! `scd-sweep` CLI suite: byte-identical output across `--jobs`, the
//! `scd-sweep/v1` document shape, `--bench-out` file emission, and the
//! usage-error contract.

use scd::trace::Json;
use std::path::PathBuf;
use std::process::{Command, Output};

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scd-sweep-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scd-sweep"))
        .args(args)
        .output()
        .expect("spawn scd-sweep")
}

/// A scaled-down grid that still covers both axes of interest (two apps,
/// a sparse and a full point) without taking seconds per run.
const GRID: &[&str] = &[
    "--apps",
    "lu,mp3d",
    "--schemes",
    "cv:4:4,nb:3",
    "--sparse",
    "full,2:4:rand",
    "--seeds",
    "0xD45B",
    "--scale",
    "0.02",
    "--clusters",
    "8",
];

/// The tentpole promise: `--jobs 1` and `--jobs 4` produce byte-identical
/// documents once the (inherently wall-clock) timing section is omitted.
#[test]
fn jobs_1_and_jobs_4_are_byte_identical() {
    let dir = scratch("determinism");
    let j1 = dir.join("j1.json");
    let j4 = dir.join("j4.json");
    for (jobs, path) in [("1", &j1), ("4", &j4)] {
        let out = run(
            &[GRID, &["--no-timing", "--jobs", jobs, "--out", path.to_str().unwrap()]]
                .concat(),
        );
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let a = std::fs::read(&j1).expect("read --jobs 1 doc");
    let b = std::fs::read(&j4).expect("read --jobs 4 doc");
    assert!(!a.is_empty());
    assert_eq!(a, b, "--jobs 1 and --jobs 4 documents differ");
}

/// Document shape: schema tag, grid echo, one `scd-run-stats/v1` run per
/// grid point in canonical order, and a timing section (by default) whose
/// per-run list matches the grid.
#[test]
fn sweep_document_shape_and_order() {
    let out = run(&[GRID, &["--jobs", "2"]].concat());
    assert_eq!(out.status.code(), Some(0));
    let doc = Json::parse(&String::from_utf8(out.stdout).unwrap()).expect("parse sweep doc");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("scd-sweep/v1"));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs array");
    assert_eq!(runs.len(), 8, "2 apps x 2 schemes x 2 sparse x 1 seed");
    let ids: Vec<&str> = runs
        .iter()
        .map(|r| r.get("run").unwrap().get("id").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        ids,
        [
            "lu/dir4cv4/s54363",
            "lu/dir4cv4_sparse/s54363",
            "lu/dir3nb/s54363",
            "lu/dir3nb_sparse/s54363",
            "mp3d/dir4cv4/s54363",
            "mp3d/dir4cv4_sparse/s54363",
            "mp3d/dir3nb/s54363",
            "mp3d/dir3nb_sparse/s54363",
        ],
        "descriptor order is apps > schemes > sparse > seeds"
    );
    for r in runs {
        assert_eq!(
            r.get("schema").and_then(Json::as_str),
            Some("scd-run-stats/v1"),
            "each run is a full stats document"
        );
        assert!(r.get("stats").unwrap().get("cycles").unwrap().as_u64().unwrap() > 0);
    }
    let timing = doc.get("timing").expect("timing present by default");
    assert_eq!(timing.get("jobs").and_then(Json::as_u64), Some(2));
    assert_eq!(
        timing.get("runs").and_then(Json::as_arr).map(<[Json]>::len),
        Some(8)
    );
    assert!(timing.get("wall_seconds").and_then(Json::as_f64).is_some());
    assert!(timing.get("serial_seconds").and_then(Json::as_f64).is_some());
    assert!(timing.get("speedup").and_then(Json::as_f64).is_some());
}

/// `--bench-out` writes the same per-point files the trajectory baselines
/// use, named by the slug rules.
#[test]
fn bench_out_writes_named_points() {
    let dir = scratch("bench-out");
    let bench_dir = dir.join("points");
    let out = run(
        &[
            GRID,
            &[
                "--jobs",
                "2",
                "--no-timing",
                "--bench-out",
                bench_dir.to_str().unwrap(),
                "--out",
                dir.join("sweep.json").to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    for name in [
        "BENCH_lu_dir4cv4.json",
        "BENCH_lu_dir4cv4_sparse.json",
        "BENCH_mp3d_dir3nb.json",
        "BENCH_mp3d_dir3nb_sparse.json",
    ] {
        let path = bench_dir.join(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing bench point {}: {e}", path.display()));
        let doc = Json::parse(&text).expect("bench point parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("scd-run-stats/v1")
        );
    }
}

#[test]
fn usage_errors_exit_two() {
    for (case, args) in [
        ("unknown flag", vec!["--bogus"]),
        ("unknown app", vec!["--apps", "quicksort"]),
        ("bad scheme", vec!["--schemes", "cv:4"]),
        ("bad sparse", vec!["--sparse", "2:4:fifo"]),
        ("bad jobs", vec!["--jobs", "0"]),
        ("bad scale", vec!["--scale", "7"]),
        ("empty apps", vec!["--apps", ","]),
    ] {
        assert_eq!(run(&args).status.code(), Some(2), "{case}");
    }
}

/// Golden gate for the committed perf-trajectory baselines: regenerate
/// the LU and MP3D scale-0.25 points **in-process** (same spec the
/// `BENCH_*.json` files were produced with) and require the rendered
/// documents to be byte-identical to the files in the repository root.
///
/// This is the determinism contract at its sharpest: the timing-wheel
/// event queue, the message arena, and the NodeSet fanout paths must
/// reproduce the exact delivery order — and therefore the exact stats —
/// of every committed baseline, byte for byte.
#[test]
fn trajectory_points_regenerate_byte_identically() {
    use bench::{bench_json_name, bench_point_document, run_sweep, SweepSpec};

    let mut spec = SweepSpec::trajectory(0.25);
    // LU and MP3D cover both trajectory shapes (compute-bound and
    // traffic-bound); the full four-app grid runs in CI's perf job.
    spec.apps = vec!["lu".into(), "mp3d".into()];
    let outcome = run_sweep(&spec, 2);
    assert_eq!(outcome.runs.len(), 4, "2 apps x full+sparse");

    let repo = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for run in &outcome.runs {
        let app = &outcome.apps[run.desc.app_idx];
        let doc =
            bench_point_document(app, &run.desc.scheme_label, &run.stats, run.attribution.clone());
        let fresh = format!("{doc}\n");
        let name = bench_json_name(app.name, &run.desc.scheme_label);
        let committed = std::fs::read_to_string(repo.join(&name))
            .unwrap_or_else(|e| panic!("missing committed baseline {name}: {e}"));
        assert_eq!(
            fresh, committed,
            "{name}: regenerated point is not byte-identical to the committed baseline \
             (if the change is intentional, regenerate with \
             `scd-sweep --trajectory --scale 0.25 --bench-out .`)"
        );
    }
}
