//! `scd-report` CLI suite: golden comparison output for canned stats
//! documents, tolerance-boundary behaviour, and the exit-code contract
//! (0 clean, 1 regression, 2 usage) that makes the binary a CI perf gate.

use scd::trace::{compare_docs, Json};
use std::path::PathBuf;
use std::process::{Command, Output};

/// A canned `scd-run-stats/v1` document, identical in shape to what
/// `scdsim --stats-json` and `BENCH_*.json` carry (the fields the report
/// tracks, at least).
fn canned_doc(cycles: u64, invals: u64) -> String {
    let total = 80 + invals + 10;
    format!(
        r#"{{"schema":"scd-run-stats/v1",
            "run":{{"app":"mp3d","scheme":"Dir4CV4"}},
            "stats":{{"cycles":{cycles},"shared_reads":50,"shared_writes":25,
              "l2_misses":0,
              "traffic":{{"requests":40,"replies":40,"invalidations":{invals},
                "acks":10,"total":{total}}},
              "network":{{"messages":{total},"hops":10,"mean_hops":2.5,
                "contention_cycles":0}}}},
            "metrics":null,"attribution":null}}"#
    )
}

/// Writes `content` as `<name>` in a per-test scratch dir and returns the
/// path.
fn scratch(test: &str, name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scd-report-{}-{test}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write canned doc");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scd-report"))
        .args(args)
        .output()
        .expect("spawn scd-report")
}

#[test]
fn self_comparison_exits_zero() {
    let doc = scratch("self", "base.json", &canned_doc(1000, 10));
    let out = run(&[doc.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS: 4 metrics within 5% of baseline"), "{stdout}");
    assert!(stdout.contains("mp3d/Dir4CV4"), "{stdout}");
}

#[test]
fn doctored_regression_exits_nonzero() {
    let base = scratch("doctored", "base.json", &canned_doc(1000, 10));
    // +20% cycles: well past a 10% tolerance.
    let cand = scratch("doctored", "cand.json", &canned_doc(1200, 10));
    let out = run(&[
        "--baseline",
        base.to_str().unwrap(),
        "--tolerance",
        "10%",
        cand.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("FAIL: 1 of 4 metrics regressed beyond 10%"), "{stdout}");
}

#[test]
fn tolerance_boundary_is_exact_at_the_cli() {
    let base = scratch("boundary", "base.json", &canned_doc(1000, 10));
    let under = scratch("boundary", "under.json", &canned_doc(1049, 10));
    let over = scratch("boundary", "over.json", &canned_doc(1051, 10));
    // +4.9% is within a 5% tolerance...
    let ok = run(&[base.to_str().unwrap(), under.to_str().unwrap()]);
    assert_eq!(ok.status.code(), Some(0));
    // ...and +5.1% is not.
    let bad = run(&[base.to_str().unwrap(), over.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    let stdout = String::from_utf8(bad.stdout).unwrap();
    assert!(stdout.contains("cycles"), "{stdout}");
}

/// Golden output: the CLI's table for two canned documents is exactly the
/// library's `Comparison::render` under a `==` header line, and the
/// regressed row prints with the pinned fixed-width layout.
#[test]
fn comparison_output_is_golden() {
    let base_doc = canned_doc(1000, 10);
    let cand_doc = canned_doc(1100, 10);
    let base = scratch("golden", "base.json", &base_doc);
    let cand = scratch("golden", "cand.json", &cand_doc);
    let out = run(&[base.to_str().unwrap(), cand.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "{stdout}");

    let expected_table = compare_docs(
        &Json::parse(&base_doc).unwrap(),
        &Json::parse(&cand_doc).unwrap(),
        5.0,
    )
    .unwrap()
    .render();
    let expected = format!(
        "== {} (mp3d/Dir4CV4) vs {} (mp3d/Dir4CV4)\n{}",
        base.display(),
        cand.display(),
        expected_table
    );
    assert_eq!(stdout, expected);
    // Pin the exact layout of a couple of rows so the format cannot
    // drift silently.
    assert!(
        stdout.contains(
            "cycles                       1000           1100    +10.00%  REGRESSED"
        ),
        "{stdout}"
    );
    assert!(
        stdout.contains(
            "mean_hops                  2.5000         2.5000     +0.00%  ok"
        ),
        "{stdout}"
    );
}

#[test]
fn usage_and_parse_errors_exit_two() {
    assert_eq!(run(&[]).status.code(), Some(2), "no files");
    assert_eq!(run(&["--bogus"]).status.code(), Some(2), "unknown flag");
    assert_eq!(
        run(&["/nonexistent/scd-report-base.json"]).status.code(),
        Some(2),
        "unreadable file"
    );
    let garbage = scratch("usage", "garbage.json", "not json at all");
    assert_eq!(
        run(&[garbage.to_str().unwrap()]).status.code(),
        Some(2),
        "unparseable file"
    );
    let foreign = scratch("usage", "foreign.json", r#"{"schema":"other/v1"}"#);
    assert_eq!(
        run(&[foreign.to_str().unwrap()]).status.code(),
        Some(2),
        "wrong schema"
    );
}

/// `scd-report` accepts real machine output end-to-end: a live run's
/// stats document compares cleanly against itself.
#[test]
fn accepts_real_stats_documents() {
    use scd::machine::{Machine, MachineConfig};
    use scd::tango::{Op, ScriptProgram, ThreadProgram};
    let cfg = MachineConfig::tiny(4);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..cfg.processors())
        .map(|p| {
            Box::new(ScriptProgram::new(vec![
                Op::Read(p as u64 * 16),
                Op::Write((p as u64 % 2) * 64),
            ])) as Box<dyn ThreadProgram>
        })
        .collect();
    let mut machine = Machine::new(cfg, programs);
    let stats = machine.try_run().expect("run must quiesce");
    let doc = stats.to_json_document(None, None, None, None, None).to_string();
    let path = scratch("real", "live.json", &doc);
    let out = run(&[path.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
}
