//! Shared between `config_fuzz` (the generative property test) and
//! `config_fuzz_regressions` (its promoted failure seeds): one fuzz
//! configuration vector and the builder that turns it into a full machine
//! run with the version oracle and quiescent checker enabled.

use scd::core::{Replacement, Scheme};
use scd::machine::{Machine, MachineConfig};
use scd::noc::LatencyModel;
use scd::sim::SimRng;
use scd::tango::{Op, ScriptProgram, ThreadProgram};

/// One point in the fuzzed configuration space.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    pub clusters: usize,
    pub ppc: usize,
    pub l2_blocks: usize,
    pub l2_ways: usize,
    pub scheme: Scheme,
    /// Directory organization: 0 complete, 1 sparse, 2 overflow.
    pub org: u8,
    pub mesh: bool,
    pub contention: Option<u64>,
    pub hints: bool,
    pub serial: bool,
    pub blocks: u64,
    pub write_ratio: f64,
    pub locks: bool,
    pub seed: u64,
}

pub fn build_and_run(fz: &FuzzConfig) -> scd::machine::RunStats {
    let mut cfg = MachineConfig::tiny(fz.clusters);
    cfg.procs_per_cluster = fz.ppc;
    cfg.l2_blocks = fz.l2_blocks;
    cfg.l2_ways = fz.l2_ways;
    cfg.l1_blocks = (fz.l2_blocks / 4).max(1);
    cfg.l1_ways = 1;
    cfg.scheme = fz.scheme;
    cfg = match fz.org {
        1 => cfg.with_sparse(4, 2, Replacement::Lru),
        2 => {
            let i = fz.scheme.pointer_count().unwrap_or(2).min(4);
            cfg.with_overflow(i, 4, 2, Replacement::Random)
        }
        _ => cfg,
    };
    if fz.mesh {
        cfg.latency = LatencyModel::Mesh {
            fixed: 13,
            per_hop: 1,
        };
    }
    cfg.link_occupancy = fz.contention;
    cfg.replacement_hints = fz.hints;
    cfg.serial_invalidations = fz.serial;
    // tiny() already enables check_invariants and track_versions.

    let procs = cfg.processors();
    let mut root = SimRng::new(fz.seed);
    let programs: Vec<Box<dyn ThreadProgram>> = (0..procs)
        .map(|p| {
            let mut rng = root.fork(p as u64);
            let mut ops = Vec::new();
            let mut held: Option<u32> = None;
            for _ in 0..150 {
                if fz.locks && held.is_none() && rng.chance(0.05) {
                    let l = rng.below(3) as u32;
                    ops.push(Op::Lock(l));
                    held = Some(l);
                }
                let a = rng.below(fz.blocks) * 16;
                if rng.chance(fz.write_ratio) {
                    ops.push(Op::Write(a));
                } else {
                    ops.push(Op::Read(a));
                }
                if let Some(l) = held {
                    if rng.chance(0.5) {
                        ops.push(Op::Unlock(l));
                        held = None;
                    }
                }
                if rng.chance(0.1) {
                    ops.push(Op::Compute(rng.below(15)));
                }
            }
            if let Some(l) = held {
                ops.push(Op::Unlock(l));
            }
            Box::new(ScriptProgram::new(ops)) as Box<dyn ThreadProgram>
        })
        .collect();
    Machine::new(cfg, programs).run()
}
