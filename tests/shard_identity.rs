//! The four-kernel shard-identity gate, as a test: for each of the
//! paper's kernels, a machine partitioned across worker threads must
//! produce the *same bytes* as the serial engine — the full
//! `scd-run-stats/v1` document (stats + metrics + attribution + trace
//! bookkeeping) and the streamed telemetry JSONL. CI runs the same
//! comparison through the `scdsim --shards` CLI on the release build;
//! this test keeps the guarantee locked in `cargo test` at a debug-build
//! scale.

use scd::apps::{dwf, locusroute, lu, mp3d, AppRun, DwfParams, LocusRouteParams, LuParams,
    Mp3dParams};
use scd::core::Scheme;
use scd::machine::{MachineConfig, ShardedMachine};
use scd::trace::{BufferSink, Json, TraceConfig};

const CLUSTERS: usize = 8;
const SEED: u64 = 0xD45B;
const SCALE: f64 = 0.05;

fn kernels() -> Vec<AppRun> {
    vec![
        lu(&LuParams::scaled(SCALE), CLUSTERS, SEED),
        dwf(&DwfParams::scaled(SCALE), CLUSTERS, SEED),
        mp3d(&Mp3dParams::scaled(SCALE), CLUSTERS, SEED),
        locusroute(&LocusRouteParams::scaled(SCALE), CLUSTERS, SEED),
    ]
}

fn config() -> MachineConfig {
    let mut cfg = MachineConfig::paper_32().with_scheme(Scheme::dir_cv(4, 4));
    cfg.clusters = CLUSTERS;
    let mut tc = TraceConfig::full(4096);
    tc.interval = 2_000;
    tc.attribution = true;
    cfg.with_trace(tc)
}

/// (full stats document, streamed JSONL) for one kernel at one shard count.
fn run(app: &AppRun, shards: usize) -> (String, String) {
    let mut m = ShardedMachine::new(config(), app.boxed_programs(), shards)
        .unwrap_or_else(|e| panic!("{}: {e}", app.name));
    let sink = BufferSink::new();
    let lines = sink.handle();
    m.attach_stream(
        Box::new(sink),
        Some(Json::obj().with("app", Json::Str(app.name.to_string()))),
    );
    let stats = m.try_run().unwrap_or_else(|e| panic!("{}: {e}", app.name));
    let doc = stats.to_json_document(
        None,
        Some(m.metrics()),
        m.attribution_json(stats.cycles),
        m.trace_json(),
        m.occupancy_json(),
    );
    let stream = lines.lock().unwrap().join("\n");
    (doc.to_string(), stream)
}

#[test]
fn four_kernels_are_byte_identical_across_shard_counts() {
    for app in kernels() {
        let (doc1, stream1) = run(&app, 1);
        for shards in [2, 4] {
            let (doc_n, stream_n) = run(&app, shards);
            assert_eq!(
                doc1, doc_n,
                "{}: stats document diverged at {shards} shards",
                app.name
            );
            assert_eq!(
                stream1, stream_n,
                "{}: telemetry stream diverged at {shards} shards",
                app.name
            );
        }
    }
}
