//! Named deterministic tests promoted from `config_fuzz.proptest-regressions`.
//!
//! Each test pins one configuration that the fuzzer once minimized to a
//! failure (or near-miss) and runs it on every `cargo test`, so the exact
//! machine shapes that historically broke the protocol are exercised
//! without depending on proptest replaying its regression file. Each
//! config runs twice: the run itself enforces deadlock-freedom, the
//! version oracle, and the quiescent coherence checks, and the two runs
//! must agree bit-for-bit (the fuzzer's determinism property).

mod fuzz_common;

use fuzz_common::{build_and_run, FuzzConfig};
use scd::core::Scheme;

fn check(fz: FuzzConfig) {
    let a = build_and_run(&fz);
    assert!(a.cycles > 0);
    assert_eq!(a.shared_refs(), a.shared_reads + a.shared_writes);
    let b = build_and_run(&fz);
    assert_eq!(a.cycles, b.cycles, "cycle count must be deterministic");
    assert_eq!(a.traffic, b.traffic, "traffic must be deterministic");
    assert_eq!(a.invalidations, b.invalidations);
    assert_eq!(a.versions_assigned, b.versions_assigned);
}

/// Superset pointers over a sparse directory on a mesh, read-mostly
/// workload with replacement hints — tiny 4-block L2 forces constant
/// eviction traffic through the sparse entry allocator.
#[test]
fn seed_superset2_sparse_mesh_hints_tiny_l2() {
    check(FuzzConfig {
        clusters: 5,
        ppc: 3,
        l2_blocks: 4,
        l2_ways: 1,
        scheme: Scheme::dir_x(2),
        org: 1,
        mesh: true,
        contention: None,
        hints: true,
        serial: false,
        blocks: 27,
        write_ratio: 0.06849477692323262,
        locks: false,
        seed: 17114011222844064151,
    });
}

/// Full-vector, complete directory under link contention with serial
/// invalidations and locks on a 7-block hot set — write-heavy, so the
/// serializer and the lock protocol interleave with invalidation fan-out.
#[test]
fn seed_full_vector_contended_serial_locks() {
    check(FuzzConfig {
        clusters: 6,
        ppc: 3,
        l2_blocks: 16,
        l2_ways: 1,
        scheme: Scheme::FullVector,
        org: 0,
        mesh: false,
        contention: Some(11),
        hints: false,
        serial: true,
        blocks: 7,
        write_ratio: 0.5949096374820023,
        locks: true,
        seed: 3645110212503573719,
    });
}

/// Minimal shrink: single-proc clusters, 4 blocks, almost no writes,
/// lock ops dominating — stresses lock acquire/release with barely any
/// coherence traffic in between.
#[test]
fn seed_lock_dominated_read_only_minimum() {
    check(FuzzConfig {
        clusters: 5,
        ppc: 1,
        l2_blocks: 4,
        l2_ways: 1,
        scheme: Scheme::FullVector,
        org: 0,
        mesh: false,
        contention: None,
        hints: false,
        serial: false,
        blocks: 4,
        write_ratio: 0.05,
        locks: true,
        seed: 14109001270786819268,
    });
}

/// One-pointer broadcast scheme over the overflow organization with
/// contention and hints: broad sharing of 44 blocks keeps entries
/// bouncing between narrow and wide stores mid-invalidation.
#[test]
fn seed_dir1b_overflow_contended_hints() {
    check(FuzzConfig {
        clusters: 8,
        ppc: 3,
        l2_blocks: 16,
        l2_ways: 1,
        scheme: Scheme::dir_b(1),
        org: 2,
        mesh: false,
        contention: Some(12),
        hints: true,
        serial: false,
        blocks: 44,
        write_ratio: 0.4112594822070164,
        locks: false,
        seed: 7791479649118663505,
    });
}

/// Superset pointers at the largest cluster count with contention, hints
/// and a tiny L2 — supersets over-invalidate, so every write fans out to
/// the pessimistic sharer estimate under link backpressure.
#[test]
fn seed_superset3_contended_hints_tiny_l2() {
    check(FuzzConfig {
        clusters: 8,
        ppc: 3,
        l2_blocks: 4,
        l2_ways: 1,
        scheme: Scheme::dir_x(3),
        org: 0,
        mesh: false,
        contention: Some(9),
        hints: true,
        serial: false,
        blocks: 19,
        write_ratio: 0.47757603855844055,
        locks: false,
        seed: 5982762415688879811,
    });
}

/// One-pointer broadcast over a sparse directory with heavy contention
/// and a write-heavy 39-block working set: broadcasts and sparse-entry
/// evictions compete for the same congested links.
#[test]
fn seed_dir1b_sparse_contended_write_heavy() {
    check(FuzzConfig {
        clusters: 4,
        ppc: 3,
        l2_blocks: 4,
        l2_ways: 1,
        scheme: Scheme::dir_b(1),
        org: 1,
        mesh: false,
        contention: Some(14),
        hints: false,
        serial: false,
        blocks: 39,
        write_ratio: 0.5846947734837652,
        locks: false,
        seed: 6392775501340527192,
    });
}

/// Coarse-vector (4 pointers, region size 1) over a sparse directory on
/// a mesh with serial invalidations — the coarse fan-out path plus the
/// invalidation serializer, with mesh hop latencies skewing arrivals.
#[test]
fn seed_coarse_vector_sparse_mesh_serial() {
    check(FuzzConfig {
        clusters: 6,
        ppc: 2,
        l2_blocks: 16,
        l2_ways: 2,
        scheme: Scheme::dir_cv(4, 1),
        org: 1,
        mesh: true,
        contention: None,
        hints: false,
        serial: true,
        blocks: 36,
        write_ratio: 0.3986106464270243,
        locks: true,
        seed: 16371884772654924965,
    });
}

/// Small 3-cluster machine on a mesh with contention, hints and locks:
/// a write-heavy 10-block hot set where lock handoff and invalidations
/// share congested mesh links.
#[test]
fn seed_small_mesh_contended_locks_hints() {
    check(FuzzConfig {
        clusters: 3,
        ppc: 2,
        l2_blocks: 4,
        l2_ways: 1,
        scheme: Scheme::FullVector,
        org: 0,
        mesh: true,
        contention: Some(9),
        hints: true,
        serial: false,
        blocks: 10,
        write_ratio: 0.5802121203538556,
        locks: true,
        seed: 8136425472475046196,
    });
}

/// One-pointer no-broadcast (oldest-victim) over a sparse directory on a
/// mesh with serial invalidations and locks — pointer replacement
/// invalidations, sparse evictions and the serializer all at once.
#[test]
fn seed_dir1nb_sparse_mesh_serial_locks() {
    check(FuzzConfig {
        clusters: 5,
        ppc: 3,
        l2_blocks: 16,
        l2_ways: 2,
        scheme: Scheme::dir_nb(1),
        org: 1,
        mesh: true,
        contention: None,
        hints: false,
        serial: true,
        blocks: 25,
        write_ratio: 0.3313107020433257,
        locks: true,
        seed: 15278458527390006806,
    });
}

/// Full-vector over a sparse directory at max cluster count with heavy
/// contention and a wide 47-block footprint: sparse sets thrash while
/// invalidation fan-outs queue behind occupied links.
#[test]
fn seed_full_vector_sparse_contended_wide_footprint() {
    check(FuzzConfig {
        clusters: 8,
        ppc: 2,
        l2_blocks: 16,
        l2_ways: 1,
        scheme: Scheme::FullVector,
        org: 1,
        mesh: false,
        contention: Some(15),
        hints: true,
        serial: false,
        blocks: 47,
        write_ratio: 0.40201341480675723,
        locks: false,
        seed: 16550262067087568811,
    });
}
