//! Trace capture/replay integration: replaying a captured run must be
//! bit-identical to the original (the machine is deterministic and the
//! trace preserves per-process op streams exactly).

use scd::apps::{locusroute, mp3d, LocusRouteParams, Mp3dParams};
use scd::core::Scheme;
use scd::machine::{Machine, MachineConfig};
use scd::tango::{ThreadProgram, Trace, TraceRecorder};

fn capture(app: &scd::apps::AppRun) -> Trace {
    let mut rec = TraceRecorder::new(app.programs.len());
    for (p, ops) in app.programs.iter().enumerate() {
        for &op in ops.iter() {
            rec.record(p, op);
        }
    }
    rec.finish()
}

fn replay_programs(trace: &Trace) -> Vec<Box<dyn ThreadProgram>> {
    trace
        .replay()
        .into_iter()
        .map(|p| Box::new(p) as Box<dyn ThreadProgram>)
        .collect()
}

#[test]
fn replay_is_bit_identical_to_direct_run() {
    let app = mp3d(&Mp3dParams::scaled(0.1), 8, 5);
    let mut cfg = MachineConfig::paper_32().with_scheme(Scheme::dir_cv(2, 2));
    cfg.clusters = 8;
    cfg.check_invariants = true;

    let direct = Machine::new(cfg.clone(), app.boxed_programs()).run();

    let trace = capture(&app);
    let bytes = trace.to_bytes();
    let reloaded = Trace::from_bytes(&bytes).expect("decode");
    let replayed = Machine::new(cfg, replay_programs(&reloaded)).run();

    assert_eq!(direct.cycles, replayed.cycles);
    assert_eq!(direct.traffic, replayed.traffic);
    assert_eq!(direct.invalidations, replayed.invalidations);
    assert_eq!(direct.shared_reads, replayed.shared_reads);
    assert_eq!(direct.sync_ops, replayed.sync_ops);
}

#[test]
fn one_trace_many_memory_systems() {
    // The whole point of trace mode: one capture, many configurations.
    let app = locusroute(&LocusRouteParams::scaled(0.15), 8, 5);
    let trace = capture(&app);
    let mut totals = Vec::new();
    for scheme in [Scheme::FullVector, Scheme::dir_b(2), Scheme::dir_cv(2, 2)] {
        let mut cfg = MachineConfig::paper_32().with_scheme(scheme);
        cfg.clusters = 8;
        let stats = Machine::new(cfg, replay_programs(&trace)).run();
        totals.push(stats.traffic.total());
    }
    // Broadcast must emit the most traffic on this region-shared workload.
    assert!(totals[1] > totals[0]);
    assert!(totals[1] > totals[2]);
}

#[test]
fn trace_file_round_trip_preserves_everything() {
    let app = mp3d(&Mp3dParams::scaled(0.05), 4, 9);
    let trace = capture(&app);
    let path = std::env::temp_dir().join("scd_integration_trace.scdt");
    trace.save(&path).unwrap();
    let loaded = Trace::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(trace, loaded);
    assert_eq!(loaded.total_ops(), app.total_ops());
}
