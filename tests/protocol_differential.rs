//! Cross-protocol differential harness: DASH, Tardis and DLS are three
//! implementations of the same sequentially-consistent-for-race-free-
//! programs contract, so on a race-free barrier-ordered kernel all three
//! must produce the *same final memory image* and the *same value at
//! every load* — even though their message patterns, lease/renewal
//! behavior and directory contents differ wildly. The value oracle tags
//! every store with `(proc, per-proc write sequence)` and records what
//! every load observed; comparing whole [`ValueOracleReport`]s across
//! protocols is therefore a per-reference equivalence proof for the
//! execution, not just a final-state check.
//!
//! The same oracle equality is asserted for the sharded engine (the
//! kernels partitioned across 2 worker threads) and under an injected
//! fault plan (NACKs force the retry paths of all three protocols).

use std::sync::Arc;

use scd::machine::{
    Machine, MachineConfig, ProtocolKind, RunStats, ShardedMachine, ValueOracleReport,
};
use scd::noc::FaultPlan;
use scd::tango::{Op, ScriptProgram, ThreadProgram};
use scd::trace::{AttribClass, Attribution, TraceConfig};

const CLUSTERS: usize = 6;

/// Byte address of block `b` under the tiny geometry (16-byte blocks).
fn a(b: u64) -> u64 {
    b * 16
}

/// One kernel: a name plus one shared op stream per processor. The
/// streams live behind `Arc` so every protocol/shard/fault variant runs
/// the *same* reference sequence without re-generating or copying it.
struct Kernel {
    name: &'static str,
    streams: Vec<Arc<[Op]>>,
}

impl Kernel {
    fn new(name: &'static str, per_proc: Vec<Vec<Op>>) -> Self {
        assert_eq!(per_proc.len(), CLUSTERS);
        Kernel {
            name,
            streams: per_proc.into_iter().map(Into::into).collect(),
        }
    }

    fn programs(&self) -> Vec<Box<dyn ThreadProgram>> {
        self.streams
            .iter()
            .map(|s| Box::new(ScriptProgram::shared(s.clone())) as Box<dyn ThreadProgram>)
            .collect()
    }
}

/// LU-like panel factorization: in phase `k` processor `k` produces the
/// pivot block, a barrier publishes it, and every processor consumes it
/// into a privately-owned (but remotely-homed, so DLS round-trips) panel
/// block. A final phase re-reads the long-untouched phase-0 pivot: by
/// then every processor's Tardis timestamp has been dragged far past the
/// original lease, while the pivot's write timestamp never moved — the
/// exact shape that must resolve as a successful lease renewal.
fn lu_like() -> Kernel {
    let per_proc = (0..CLUSTERS)
        .map(|p| {
            let panel = 6 + ((p as u64 + 1) % CLUSTERS as u64);
            let mut ops = Vec::new();
            for k in 0..4u64 {
                if p as u64 == k {
                    ops.push(Op::Write(a(k)));
                }
                ops.push(Op::Barrier(2 * k as u32));
                ops.push(Op::Read(a(k)));
                ops.push(Op::Read(a(panel)));
                ops.push(Op::Write(a(panel)));
                ops.push(Op::Barrier(2 * k as u32 + 1));
            }
            ops.push(Op::Barrier(98));
            ops.push(Op::Read(a(0)));
            ops
        })
        .collect();
    Kernel::new("lu-like", per_proc)
}

/// Ring stencil: each processor owns one block (homed three clusters
/// away, so DLS writes round-trip); every iteration writes the owned
/// block, then (after a barrier) reads both neighbors' blocks.
fn stencil() -> Kernel {
    let n = CLUSTERS as u64;
    let owned = |p: u64| (p + 3) % n;
    let per_proc = (0..n)
        .map(|p| {
            let mut ops = Vec::new();
            for t in 0..4u32 {
                ops.push(Op::Write(a(owned(p))));
                ops.push(Op::Barrier(8 + 2 * t));
                ops.push(Op::Read(a(owned((p + n - 1) % n))));
                ops.push(Op::Read(a(owned((p + 1) % n))));
                ops.push(Op::Barrier(9 + 2 * t));
            }
            ops
        })
        .collect();
    Kernel::new("stencil", per_proc)
}

/// Two-level tree reduction: six leaves combine into three partials,
/// the partials into one root, and everybody reads the root back.
fn reduce() -> Kernel {
    let per_proc = (0..CLUSTERS as u64)
        .map(|p| {
            let mut ops = vec![Op::Write(a(p)), Op::Barrier(40)];
            if p < 3 {
                ops.push(Op::Read(a(2 * p)));
                ops.push(Op::Read(a(2 * p + 1)));
                ops.push(Op::Write(a(6 + p)));
            }
            ops.push(Op::Barrier(41));
            if p == 0 {
                for b in 6..9 {
                    ops.push(Op::Read(a(b)));
                }
                ops.push(Op::Write(a(9)));
            }
            ops.push(Op::Barrier(42));
            ops.push(Op::Read(a(9)));
            ops
        })
        .collect();
    Kernel::new("reduce", per_proc)
}

/// Migratory counter: a lock-protected read-modify-write pair hops from
/// cluster to cluster (one holder per barrier round, so the write order
/// — and therefore the oracle image — is deterministic), then everyone
/// reads the final values.
fn migratory() -> Kernel {
    let per_proc = (0..CLUSTERS)
        .map(|p| {
            let mut ops = Vec::new();
            for r in 0..CLUSTERS {
                if p == r {
                    ops.extend([
                        Op::Lock(0),
                        Op::Read(a(0)),
                        Op::Write(a(0)),
                        Op::Read(a(1)),
                        Op::Write(a(1)),
                        Op::Unlock(0),
                    ]);
                }
                ops.push(Op::Barrier(50 + r as u32));
            }
            ops.push(Op::Read(a(0)));
            ops.push(Op::Read(a(1)));
            ops
        })
        .collect();
    Kernel::new("migratory", per_proc)
}

fn kernels() -> Vec<Kernel> {
    vec![lu_like(), stencil(), reduce(), migratory()]
}

fn config(protocol: ProtocolKind) -> MachineConfig {
    MachineConfig::tiny(CLUSTERS)
        .with_protocol(protocol)
        .with_value_oracle()
}

fn run_solo(kernel: &Kernel, cfg: MachineConfig) -> (ValueOracleReport, RunStats) {
    let mut m = Machine::new(cfg, kernel.programs());
    let stats = m
        .try_run()
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    let report = m.value_oracle_report().expect("oracle was enabled");
    (report, stats)
}

fn run_sharded(kernel: &Kernel, cfg: MachineConfig, shards: usize) -> ValueOracleReport {
    let mut m = ShardedMachine::new(cfg, kernel.programs(), shards)
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    m.try_run()
        .unwrap_or_else(|e| panic!("{}: {e}", kernel.name));
    m.value_oracle_report().expect("oracle was enabled")
}

/// The core differential oracle: for each kernel, Tardis and DLS must
/// reproduce DASH's final memory image and every individual load value.
#[test]
fn four_kernels_agree_across_all_three_protocols() {
    for kernel in kernels() {
        let (dash, _) = run_solo(&kernel, config(ProtocolKind::Dash));
        assert!(!dash.image.is_empty(), "{}: kernel wrote nothing", kernel.name);

        let (tardis, ts) = run_solo(&kernel, config(ProtocolKind::Tardis));
        assert_eq!(dash, tardis, "{}: tardis diverged from dash", kernel.name);
        let tc = ts.tardis.expect("tardis counters present");
        assert!(tc.lease_fills > 0, "{}: no lease ever granted", kernel.name);
        assert!(tc.write_throughs > 0, "{}: no write-through", kernel.name);

        let (dls, ds) = run_solo(&kernel, config(ProtocolKind::Dls));
        assert_eq!(dash, dls, "{}: dls diverged from dash", kernel.name);
        let dc = ds.dls.expect("dls counters present");
        assert!(dc.llc_fills > 0, "{}: no remote read reached the LLC", kernel.name);
        assert!(dc.llc_writes > 0, "{}: no remote write reached the LLC", kernel.name);
    }
}

/// The sharded engine must preserve the oracle verdict: partitioning any
/// protocol's machine across two worker threads changes nothing about
/// what the loads observed.
#[test]
fn sharded_runs_agree_with_the_solo_baseline() {
    for kernel in kernels() {
        let (baseline, _) = run_solo(&kernel, config(ProtocolKind::Dash));
        for protocol in ProtocolKind::ALL {
            let sharded = run_sharded(&kernel, config(protocol), 2);
            assert_eq!(
                baseline, sharded,
                "{}: {protocol:?} diverged under 2 shards",
                kernel.name
            );
        }
    }
}

/// Injected NACKs exercise every protocol's retry path without being
/// allowed to change a single observed value: the kernels are race-free,
/// so delay-equivalent perturbations must be value-invisible.
#[test]
fn nack_fault_plan_preserves_the_differential() {
    let kernel = stencil();
    let (baseline, _) = run_solo(&kernel, config(ProtocolKind::Dash));
    let mut nacks = 0;
    for protocol in ProtocolKind::ALL {
        let cfg = config(protocol).with_fault(FaultPlan::nack(0.2));
        let (faulty, stats) = run_solo(&kernel, cfg);
        assert_eq!(
            baseline, faulty,
            "{}: {protocol:?} diverged under NACK injection",
            kernel.name
        );
        nacks += stats.faults.nacks;
    }
    assert!(nacks > 0, "fault plan never fired");
}

/// Satellite attribution gate for the new protocols: the online
/// send-hook classification (which feeds the Tardis `renewal` and DLS
/// `llc_fill` classes) must agree class-for-class with an offline pass
/// over the recorded event stream.
#[test]
fn tardis_and_dls_attribution_agree_online_and_offline() {
    for protocol in [ProtocolKind::Tardis, ProtocolKind::Dls] {
        let kernel = lu_like();
        let cfg = config(protocol).with_trace(TraceConfig::full(1 << 16));
        let mut m = Machine::new(cfg, kernel.programs());
        m.try_run().unwrap_or_else(|e| panic!("{protocol:?}: {e}"));
        let (_, dropped) = m.trace_counts();
        assert_eq!(dropped, 0, "ring too small; offline pass would be partial");
        let online = m.attribution().expect("full tracing enables attribution");
        let offline = Attribution::from_events(&m.trace_events(), online.params());
        assert_eq!(online.totals(), offline.totals(), "{protocol:?}");
        for class in AttribClass::ALL {
            assert_eq!(
                online.class(class),
                offline.class(class),
                "{protocol:?}: {}",
                class.label()
            );
        }
        let exercised = match protocol {
            ProtocolKind::Tardis => AttribClass::Renewal,
            _ => AttribClass::LlcFill,
        };
        assert!(
            online.class(exercised).messages > 0,
            "{protocol:?}: its own attribution class never fired"
        );
    }
}
